//! Distributed contig generation (Algorithm 2) — ELBA's core
//! contribution.
//!
//! ```text
//! 1: L    ← BranchRemoval(S)        degree vector + mask rows/cols ≥ 3
//! 2: v    ← ConnectedComponent(L)   LACC-style hook & shortcut
//! 3: p    ← GreedyPartitioning(v,P) sizes → LPT on one rank → bcast
//! 4: P    ← InducedSubgraph(L, p)   Fig. 2 exchange + custom all-to-all
//! 5: cset ← LocalAssembly(P, seqs)  per-rank linear walks
//! ```
//!
//! Phase timings are booked under `ExtractContig:*` sub-phases so the
//! Fig. 5 breakdown (and the §6.1 claim that the induced subgraph is
//! 65–85 % of contig time) can be measured directly.

use std::collections::HashMap;

use elba_align::SgEdge;
use elba_comm::ProcGrid;
use elba_seq::ReadStore;
use elba_sparse::DistMat;

use crate::assembly::{local_assembly, AssemblyConfig, AssemblyStats, Contig};
use crate::induced::induced_subgraph;
use crate::lacc::connected_components;
use crate::partition::{partition, PartitionStrategy, Partitioning};

/// Parameters of the contig stage.
#[derive(Debug, Clone)]
pub struct ContigConfig {
    pub strategy: PartitionStrategy,
    pub assembly: AssemblyConfig,
    /// Simulated MPI element-count limit for the sequence exchange.
    pub count_limit: usize,
}

impl Default for ContigConfig {
    fn default() -> Self {
        ContigConfig {
            strategy: PartitionStrategy::Lpt,
            assembly: AssemblyConfig::default(),
            count_limit: elba_seq::store::MPI_COUNT_LIMIT,
        }
    }
}

/// Statistics of one contig-generation run (globally reduced).
#[derive(Debug, Clone, Default)]
pub struct ContigStats {
    /// Branch vertices masked out of `S`.
    pub branch_vertices: u64,
    /// Linear components of ≥ 2 reads (the paper's contig count `n`).
    pub n_components: u64,
    /// Reads participating in some contig.
    pub reads_in_contigs: u64,
    /// Rounds the connected-components iteration needed.
    pub cc_rounds: usize,
    /// Load-balance quality of the chosen partitioning.
    pub makespan: u64,
    pub imbalance: f64,
    /// Largest contig, in reads.
    pub largest_component: u64,
    /// Per-rank local assembly outcome, globally summed.
    pub assembly: AssemblyStats,
}

/// Run contig generation on the string matrix `S` (collective). Returns
/// this rank's locally assembled contigs plus global statistics.
pub fn contig_generation(
    grid: &ProcGrid,
    s: &DistMat<SgEdge>,
    store: &ReadStore,
    cfg: &ContigConfig,
) -> (Vec<Contig>, ContigStats) {
    let world = grid.world();
    let mut stats = ContigStats::default();

    // --- BranchRemoval (Algorithm 2, line 2) ---------------------------
    let l = {
        let _g = world.phase("ExtractContig:BranchRemoval");
        let degrees = s.row_degrees(grid);
        let branch_mask = degrees.map(grid, |_, &d| d >= 3);
        stats.branch_vertices = world.allreduce(
            branch_mask.local().iter().filter(|&&b| b).count() as u64,
            |a, b| a + b,
        );
        s.clone().mask_rows_cols(grid, &branch_mask)
    };

    // --- ConnectedComponent (line 3) ------------------------------------
    let labels = {
        let _g = world.phase("ExtractContig:ConnectedComponent");
        let cc = connected_components(grid, &l);
        stats.cc_rounds = cc.rounds;
        cc.labels
    };

    // --- GreedyPartitioning (line 4) -------------------------------------
    let owner_of_label: HashMap<u64, usize> = {
        let _g = world.phase("ExtractContig:GreedyPartitioning");
        // Estimate contig sizes: count this rank's vertices per label,
        // only for vertices that still carry an edge.
        let degrees = l.row_degrees(grid);
        let mut local_sizes: HashMap<u64, u64> = HashMap::new();
        for (&label, &deg) in labels.local().iter().zip(degrees.local()) {
            if deg >= 1 {
                *local_sizes.entry(label).or_insert(0) += 1;
            }
        }
        // Collect global sizes on one rank (the paper gathers contig
        // lengths on a single processor because n ≪ reads), run LPT,
        // broadcast the assignment p to the whole grid.
        let pairs: Vec<(u64, u64)> = local_sizes.into_iter().collect();
        let gathered = world.gather(0, pairs);
        let assignment: Vec<(u64, u64)> = if world.rank() == 0 {
            let mut sizes: HashMap<u64, u64> = HashMap::new();
            for (label, count) in gathered.expect("rank 0 gathers").into_iter().flatten() {
                *sizes.entry(label).or_insert(0) += count;
            }
            let mut entries: Vec<(u64, u64)> = sizes.into_iter().collect();
            entries.sort_unstable(); // determinism
            let size_vec: Vec<u64> = entries.iter().map(|&(_, s)| s).collect();
            let part = partition(&size_vec, world.size(), cfg.strategy);
            stats.makespan = part.makespan();
            stats.imbalance = part.imbalance();
            stats.largest_component = size_vec.iter().copied().max().unwrap_or(0);
            stats.n_components = entries.len() as u64;
            stats.reads_in_contigs = size_vec.iter().sum();
            entries
                .iter()
                .zip(&part.assignment)
                .map(|(&(label, _), &rank)| (label, rank as u64))
                .collect()
        } else {
            Vec::new()
        };
        let assignment = world.bcast(0, (world.rank() == 0).then_some(assignment));
        // Broadcast the scalar stats too so every rank reports them.
        let scalars = world.bcast(
            0,
            (world.rank() == 0).then(|| {
                vec![
                    stats.makespan,
                    stats.largest_component,
                    stats.n_components,
                    stats.reads_in_contigs,
                    stats.imbalance.to_bits(),
                ]
            }),
        );
        stats.makespan = scalars[0];
        stats.largest_component = scalars[1];
        stats.n_components = scalars[2];
        stats.reads_in_contigs = scalars[3];
        stats.imbalance = f64::from_bits(scalars[4]);
        assignment
            .into_iter()
            .map(|(label, rank)| (label, rank as usize))
            .collect()
    };

    // --- InducedSubgraph + sequence redistribution (line 5) -------------
    let (local_graph, local_store) = {
        let _g = world.phase("ExtractContig:InducedSubgraph");
        let local_graph = induced_subgraph(grid, &l, &labels, &owner_of_label);
        // Reads follow their contig: the rank holding vector chunk entry
        // `id` also holds read `id` (aligned layouts), so it knows the
        // destination of each of its reads.
        let my_range = labels.global_range(grid);
        let label_chunk = labels.local().to_vec();
        let local_store = store.exchange(
            grid,
            |id| {
                let offset = id as usize - my_range.start;
                match owner_of_label.get(&label_chunk[offset]) {
                    Some(&rank) => vec![rank],
                    None => Vec::new(),
                }
            },
            cfg.count_limit,
        );
        (local_graph, local_store)
    };

    // --- LocalAssembly (line 6) ------------------------------------------
    let contigs = {
        let _g = world.phase("ExtractContig:LocalAssembly");
        let (contigs, astats) = local_assembly(&local_graph, &local_store, &cfg.assembly);
        let summed = world.allreduce(
            vec![
                astats.contigs as u64,
                astats.cycles as u64,
                astats.reads_used as u64,
                astats.orientation_breaks as u64,
            ],
            |a, b| a.iter().zip(&b).map(|(x, y)| x + y).collect(),
        );
        stats.assembly = AssemblyStats {
            contigs: summed[0] as usize,
            cycles: summed[1] as usize,
            reads_used: summed[2] as usize,
            orientation_breaks: summed[3] as usize,
        };
        contigs
    };

    (contigs, stats)
}

/// Gather every rank's contigs onto all ranks (sorted longest-first, then
/// lexicographically for determinism).
pub fn gather_contigs(grid: &ProcGrid, local: &[Contig]) -> Vec<Contig> {
    let packed: Vec<(Vec<u8>, Vec<u64>, bool)> = local
        .iter()
        .map(|c| (c.seq.codes().to_vec(), c.read_ids.clone(), c.circular))
        .collect();
    let mut all: Vec<Contig> = grid
        .world()
        .allgather(packed)
        .into_iter()
        .flatten()
        .map(|(codes, read_ids, circular)| Contig {
            seq: elba_seq::Seq::from_codes(codes),
            read_ids,
            circular,
        })
        .collect();
    all.sort_by(|a, b| {
        b.seq
            .len()
            .cmp(&a.seq.len())
            .then_with(|| a.read_ids.cmp(&b.read_ids))
    });
    all
}

/// Check the partitioning invariant: one rank per contig label.
pub fn partitioning_is_valid(part: &Partitioning, nparts: usize) -> bool {
    part.assignment.iter().all(|&r| r < nparts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use elba_comm::{Backend, Runner};
    use elba_seq::Seq;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn genome(len: usize, seed: u64) -> Seq {
        let mut rng = StdRng::seed_from_u64(seed);
        Seq::from_codes((0..len).map(|_| rng.gen_range(0..4u8)).collect())
    }

    /// Build the exact string matrix + read store for reads tiling a
    /// genome (adjacent reads overlap; no errors; mixed strands).
    fn exact_string_graph(
        grid: &ProcGrid,
        g: &Seq,
        read_len: usize,
        stride: usize,
        seed: u64,
    ) -> (DistMat<SgEdge>, ReadStore, usize) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut reads = Vec::new();
        let mut strands = Vec::new();
        let mut start = 0;
        while start + read_len <= g.len() {
            let rc = rng.gen_bool(0.5);
            let r = g.substring(start, start + read_len);
            reads.push(if rc { r.reverse_complement() } else { r });
            strands.push(rc);
            start += stride;
        }
        let n = reads.len();
        let store = ReadStore::from_replicated(grid, &reads);
        let overlap = read_len - stride;
        let triples: Vec<(u64, u64, SgEdge)> = if grid.world().rank() == 0 {
            let mut t = Vec::new();
            for i in 0..n - 1 {
                let rc = strands[i] != strands[i + 1];
                let aln = if !strands[i] {
                    elba_align::OverlapAln {
                        rc,
                        u_beg: stride,
                        u_end: read_len - 1,
                        w_beg: 0,
                        w_end: overlap - 1,
                        u_len: read_len,
                        v_len: read_len,
                        score: overlap as i32,
                    }
                } else {
                    elba_align::OverlapAln {
                        rc,
                        u_beg: 0,
                        u_end: overlap - 1,
                        w_beg: stride,
                        w_end: read_len - 1,
                        u_len: read_len,
                        v_len: read_len,
                        score: overlap as i32,
                    }
                };
                let (fwd, bwd) = elba_align::dovetail_edges(&aln);
                t.push((i as u64, (i + 1) as u64, fwd));
                t.push(((i + 1) as u64, i as u64, bwd));
            }
            t
        } else {
            Vec::new()
        };
        let s = DistMat::from_triples(grid, n, n, triples, |_, _| unreachable!());
        (s, store, n)
    }

    #[test]
    fn single_chain_assembles_to_genome() {
        for p in [1usize, 4, 9] {
            let out = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
                let grid = ProcGrid::new(comm);
                let g = genome(750, 21); // 7 reads of 150 at stride 100 tile it exactly
                let (s, store, n) = exact_string_graph(&grid, &g, 150, 100, 5);
                let cfg = ContigConfig::default();
                let (local, stats) = contig_generation(&grid, &s, &store, &cfg);
                let all = gather_contigs(&grid, &local);
                (all.len(), all[0].seq.clone(), stats.n_components, n, g)
            });
            let (n_contigs, seq, n_components, _n, g) = &out[0];
            assert_eq!(*n_contigs, 1, "p={p}");
            assert_eq!(*n_components, 1);
            assert!(
                seq == g || *seq == g.reverse_complement(),
                "p={p}: contig len {} genome len {}",
                seq.len(),
                g.len()
            );
        }
    }

    #[test]
    fn branch_vertex_splits_contigs() {
        // Chain 0-1-2-3-4-5 plus a spurious edge 2-5: vertex 2 reaches
        // degree 3 (a branch) while 5 stays at degree 2. Masking vertex 2
        // leaves chains {0,1} and {3,4,5}.
        let out = Runner::new(Backend::InProcess).ranks(4).run(|comm| {
            let grid = ProcGrid::new(comm);
            let g = genome(650, 33); // 6 reads: vertices 0..=5 exist
            let (s, store, _) = exact_string_graph(&grid, &g, 150, 100, 7);
            // add a spurious symmetric edge 2-5 (repeat-like)
            let e = SgEdge {
                pre: 99,
                post: 0,
                src_rev: false,
                dst_rev: false,
                suffix: 100,
            };
            let extra = if grid.world().rank() == 0 {
                vec![(2u64, 5u64, e), (5u64, 2u64, e)]
            } else {
                Vec::new()
            };
            let merged: Vec<(u64, u64, SgEdge)> = s
                .gather_triples(&grid)
                .into_iter()
                .chain(if grid.world().rank() == 0 {
                    extra
                } else {
                    Vec::new()
                })
                .collect();
            let merged = if grid.world().rank() == 0 {
                merged
            } else {
                Vec::new()
            };
            let s2 = DistMat::from_triples(&grid, s.nrows(), s.ncols(), merged, |a, _| {
                let _ = a;
            });
            let cfg = ContigConfig::default();
            let (local, stats) = contig_generation(&grid, &s2, &store, &cfg);
            let all = gather_contigs(&grid, &local);
            (
                stats.branch_vertices,
                all.iter().map(|c| c.read_ids.len()).collect::<Vec<_>>(),
            )
        });
        let (branches, contig_sizes) = &out[0];
        assert_eq!(*branches, 1);
        let mut sizes = contig_sizes.clone();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 3]);
    }

    #[test]
    fn load_balancing_spreads_contigs() {
        let out = Runner::new(Backend::InProcess).ranks(4).run(|comm| {
            let grid = ProcGrid::new(comm);
            // three separate genomes → three contigs
            let mut reads = Vec::new();
            let mut triples = Vec::new();
            let mut base = 0u64;
            for chunk in 0..3u64 {
                let g = genome(500, 40 + chunk);
                let mut start = 0;
                let mut ids = Vec::new();
                while start + 150 <= g.len() {
                    reads.push(g.substring(start, start + 150));
                    ids.push(base + ids.len() as u64);
                    start += 100;
                }
                if grid.world().rank() == 0 {
                    for w in ids.windows(2) {
                        let aln = elba_align::OverlapAln {
                            rc: false,
                            u_beg: 100,
                            u_end: 149,
                            w_beg: 0,
                            w_end: 49,
                            u_len: 150,
                            v_len: 150,
                            score: 50,
                        };
                        let (fwd, bwd) = elba_align::dovetail_edges(&aln);
                        triples.push((w[0], w[1], fwd));
                        triples.push((w[1], w[0], bwd));
                    }
                }
                base += ids.len() as u64;
            }
            let n = reads.len();
            let store = ReadStore::from_replicated(&grid, &reads);
            let s = DistMat::from_triples(&grid, n, n, triples, |_, _| unreachable!());
            let cfg = ContigConfig::default();
            let (local, stats) = contig_generation(&grid, &s, &store, &cfg);
            (local.len(), stats.n_components, stats.imbalance)
        });
        let total: usize = out.iter().map(|&(n, _, _)| n).sum();
        assert_eq!(total, 3);
        assert_eq!(out[0].1, 3);
        // three equal contigs on four ranks: no rank gets two
        assert!(out.iter().all(|&(n, _, _)| n <= 1));
    }

    #[test]
    fn determinism_across_rank_counts() {
        let mut results: Vec<Vec<String>> = Vec::new();
        for p in [1usize, 4, 9] {
            let out = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
                let grid = ProcGrid::new(comm);
                let g = genome(850, 55); // 8 reads tile it exactly
                let (s, store, _) = exact_string_graph(&grid, &g, 150, 100, 9);
                let cfg = ContigConfig::default();
                let (local, _) = contig_generation(&grid, &s, &store, &cfg);
                let all = gather_contigs(&grid, &local);
                all.iter()
                    .map(|c| {
                        // canonicalize strand for comparison
                        let fwd = c.seq.to_string();
                        let rc = c.seq.reverse_complement().to_string();
                        if fwd <= rc {
                            fwd
                        } else {
                            rc
                        }
                    })
                    .collect::<Vec<String>>()
            });
            results.push(out.into_iter().next().expect("rank 0 output"));
        }
        assert_eq!(results[0], results[1], "P=1 vs P=4");
        assert_eq!(results[1], results[2], "P=4 vs P=9");
    }
}
