//! Contig load balancing: greedy multiway number partitioning (§4.3).
//!
//! Contig sizes (read counts) are partitioned into P subsets with sums as
//! equal as possible — Graham's identical-machines scheduling problem.
//! ELBA uses the **Longest Processing Time** (LPT) rule: sort sizes
//! descending, repeatedly assign the next size to the least-loaded
//! processor. Unsorted greedy achieves a 2 − 1/P approximation in O(n);
//! sorting improves it to (4P − 1)/(3P) at O(n log n) — cheap because the
//! number of contigs is orders of magnitude below the number of reads,
//! which is also why the paper runs the partitioner on a single rank.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which partitioning rule to use (the ablation bench compares them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Sorted greedy (the paper's choice): (4P−1)/(3P) approximation.
    Lpt,
    /// Greedy in input order: 2 − 1/P approximation.
    GreedyUnsorted,
    /// Cyclic assignment ignoring sizes (worst-case baseline).
    RoundRobin,
}

/// Result of a partitioning run.
#[derive(Debug, Clone)]
pub struct Partitioning {
    /// `assignment[i]` = processor of item `i` (input order).
    pub assignment: Vec<usize>,
    /// Total size per processor.
    pub loads: Vec<u64>,
}

impl Partitioning {
    /// The largest processor load — the quantity LPT minimizes (makespan).
    pub fn makespan(&self) -> u64 {
        self.loads.iter().copied().max().unwrap_or(0)
    }

    /// Trivial lower bound on the optimal makespan:
    /// `max(⌈total/P⌉, max item)`.
    pub fn lower_bound(sizes: &[u64], nparts: usize) -> u64 {
        let total: u64 = sizes.iter().sum();
        let ceil_avg = total.div_ceil(nparts as u64);
        ceil_avg.max(sizes.iter().copied().max().unwrap_or(0))
    }

    /// Load imbalance: makespan / mean load (1.0 = perfect).
    pub fn imbalance(&self) -> f64 {
        let total: u64 = self.loads.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.loads.len() as f64;
        self.makespan() as f64 / mean
    }
}

/// Partition `sizes` into `nparts` subsets.
pub fn partition(sizes: &[u64], nparts: usize, strategy: PartitionStrategy) -> Partitioning {
    assert!(nparts > 0);
    match strategy {
        PartitionStrategy::Lpt => {
            let mut order: Vec<usize> = (0..sizes.len()).collect();
            order.sort_by_key(|&i| Reverse(sizes[i]));
            greedy_in_order(sizes, nparts, order.into_iter())
        }
        PartitionStrategy::GreedyUnsorted => greedy_in_order(sizes, nparts, 0..sizes.len()),
        PartitionStrategy::RoundRobin => {
            let mut loads = vec![0u64; nparts];
            let assignment: Vec<usize> = (0..sizes.len()).map(|i| i % nparts).collect();
            for (i, &part) in assignment.iter().enumerate() {
                loads[part] += sizes[i];
            }
            Partitioning { assignment, loads }
        }
    }
}

/// Assign items (in the given visiting order) to the least-loaded part.
fn greedy_in_order(
    sizes: &[u64],
    nparts: usize,
    order: impl Iterator<Item = usize>,
) -> Partitioning {
    let mut assignment = vec![0usize; sizes.len()];
    let mut loads = vec![0u64; nparts];
    // Min-heap of (load, part); ties broken by part index for determinism.
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
        (0..nparts).map(|part| Reverse((0u64, part))).collect();
    for i in order {
        let Reverse((load, part)) = heap.pop().expect("heap holds nparts entries");
        assignment[i] = part;
        let new_load = load + sizes[i];
        loads[part] = new_load;
        heap.push(Reverse((new_load, part)));
    }
    Partitioning { assignment, loads }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lpt_classic_graham_instance() {
        // {8, 7, 6, 5, 4} over 2 parts: OPT = 15 (8+7 | 6+5+4) but LPT
        // lands on 17 (8+5+4 | 7+6) — the canonical example of the
        // (4P−1)/(3P) approximation gap. 17/15 ≤ 7/6 holds.
        let p = partition(&[8, 7, 6, 5, 4], 2, PartitionStrategy::Lpt);
        assert_eq!(p.makespan(), 17);
        // 17/15 ≤ (4·2−1)/(3·2) = 7/6: the Graham bound holds (compile-
        // time constants, so stated rather than asserted).
        assert_eq!(p.loads.iter().sum::<u64>(), 30);
    }

    #[test]
    fn lpt_exactly_optimal_when_sizes_pair_up() {
        let p = partition(&[4, 4, 3, 3, 2, 2], 3, PartitionStrategy::Lpt);
        assert_eq!(p.makespan(), 6);
    }

    #[test]
    fn lpt_beats_round_robin_on_skewed_input() {
        // one giant contig + small ones: round-robin stacks extras on the
        // giant's processor, LPT keeps it alone.
        let sizes: Vec<u64> = vec![100, 1, 1, 1, 1, 1];
        let lpt = partition(&sizes, 2, PartitionStrategy::Lpt);
        let rr = partition(&sizes, 2, PartitionStrategy::RoundRobin);
        assert_eq!(lpt.makespan(), 100);
        assert_eq!(rr.makespan(), 102); // indices 0,2,4 pile onto part 0
        assert!(lpt.makespan() < rr.makespan());
    }

    #[test]
    fn single_part_takes_everything() {
        let p = partition(&[3, 1, 4], 1, PartitionStrategy::Lpt);
        assert_eq!(p.assignment, vec![0, 0, 0]);
        assert_eq!(p.makespan(), 8);
    }

    #[test]
    fn more_parts_than_items_leaves_idle_processors() {
        // the paper's n < P case: some processors stay idle
        let p = partition(&[5, 3], 4, PartitionStrategy::Lpt);
        assert_eq!(p.loads.iter().filter(|&&l| l == 0).count(), 2);
        assert_eq!(p.makespan(), 5);
    }

    #[test]
    fn empty_input() {
        let p = partition(&[], 3, PartitionStrategy::GreedyUnsorted);
        assert!(p.assignment.is_empty());
        assert_eq!(p.makespan(), 0);
    }

    #[test]
    fn deterministic_assignment() {
        let sizes: Vec<u64> = (0..50).map(|i| (i * 37 + 11) % 97).collect();
        let a = partition(&sizes, 7, PartitionStrategy::Lpt);
        let b = partition(&sizes, 7, PartitionStrategy::Lpt);
        assert_eq!(a.assignment, b.assignment);
    }

    proptest! {
        /// Greedy bound: makespan ≤ total/P + max item; and never below
        /// the trivial lower bound.
        #[test]
        fn greedy_bounds_hold(
            sizes in proptest::collection::vec(1u64..1000, 1..200),
            nparts in 1usize..16,
        ) {
            for strategy in [PartitionStrategy::Lpt, PartitionStrategy::GreedyUnsorted] {
                let p = partition(&sizes, nparts, strategy);
                let total: u64 = sizes.iter().sum();
                let max = *sizes.iter().max().expect("non-empty");
                let lb = Partitioning::lower_bound(&sizes, nparts);
                prop_assert!(p.makespan() >= lb);
                prop_assert!(p.makespan() <= total / nparts as u64 + max);
                // bookkeeping is consistent
                prop_assert_eq!(p.loads.iter().sum::<u64>(), total);
                let mut loads = vec![0u64; nparts];
                for (i, &part) in p.assignment.iter().enumerate() {
                    prop_assert!(part < nparts);
                    loads[part] += sizes[i];
                }
                prop_assert_eq!(loads, p.loads.clone());
            }
        }

        /// LPT satisfies its (4P−1)/(3P) bound relative to the lower
        /// bound *scaled by the greedy guarantee*: we can't know OPT, but
        /// LPT must always be within 4/3 + 1/3 of LB·(ratio to optimal),
        /// so check the conservative bound makespan ≤ 2·LB which both
        /// strategies must satisfy, and that LPT ≤ unsorted on sorted-
        /// adversarial inputs.
        #[test]
        fn lpt_within_twice_lower_bound(
            sizes in proptest::collection::vec(1u64..1000, 1..200),
            nparts in 1usize..16,
        ) {
            let p = partition(&sizes, nparts, PartitionStrategy::Lpt);
            let lb = Partitioning::lower_bound(&sizes, nparts);
            prop_assert!(p.makespan() <= 2 * lb);
        }
    }
}
