//! Property tests for the contig-generation stage in isolation: random
//! linear-chain string graphs must always yield exactly their linear
//! components as contigs, with LPT keeping per-rank loads balanced.

use elba_align::{dovetail_edges, OverlapAln, SgEdge};
use elba_comm::ProcGrid;
use elba_comm::{Backend, Runner};
use elba_core::{contig_generation, gather_contigs, ContigConfig};
use elba_seq::{ReadStore, Seq};
use elba_sparse::DistMat;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Build one exact chain over a fresh random genome; returns reads (with
/// chosen strands) and the symmetric directed edge pairs, ids offset by
/// `base`.
fn make_chain(seed: u64, n_reads: usize, base: u64) -> (Seq, Vec<Seq>, Vec<(u64, u64, SgEdge)>) {
    let read_len = 120usize;
    let stride = 70usize;
    let glen = stride * (n_reads - 1) + read_len;
    let mut rng = StdRng::seed_from_u64(seed);
    let genome = Seq::from_codes((0..glen).map(|_| rng.gen_range(0..4u8)).collect());
    let strands: Vec<bool> = (0..n_reads).map(|_| rng.gen_bool(0.5)).collect();
    let reads: Vec<Seq> = (0..n_reads)
        .map(|i| {
            let r = genome.substring(i * stride, i * stride + read_len);
            if strands[i] {
                r.reverse_complement()
            } else {
                r
            }
        })
        .collect();
    let overlap = read_len - stride;
    let mut triples = Vec::new();
    for i in 0..n_reads - 1 {
        let rc = strands[i] != strands[i + 1];
        let aln = if !strands[i] {
            OverlapAln {
                rc,
                u_beg: stride,
                u_end: read_len - 1,
                w_beg: 0,
                w_end: overlap - 1,
                u_len: read_len,
                v_len: read_len,
                score: overlap as i32,
            }
        } else {
            OverlapAln {
                rc,
                u_beg: 0,
                u_end: overlap - 1,
                w_beg: stride,
                w_end: read_len - 1,
                u_len: read_len,
                v_len: read_len,
                score: overlap as i32,
            }
        };
        let (fwd, bwd) = dovetail_edges(&aln);
        triples.push((base + i as u64, base + i as u64 + 1, fwd));
        triples.push((base + i as u64 + 1, base + i as u64, bwd));
    }
    (genome, reads, triples)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn every_chain_becomes_exactly_one_correct_contig(
        seed in 0u64..10_000,
        chain_sizes in proptest::collection::vec(2usize..7, 1..5),
        p_idx in 0usize..3,
    ) {
        let p = [1usize, 4, 9][p_idx];
        // Build several disjoint chains with globally unique read ids.
        let mut all_reads: Vec<Seq> = Vec::new();
        let mut all_triples: Vec<(u64, u64, SgEdge)> = Vec::new();
        let mut genomes: Vec<Seq> = Vec::new();
        for (c, &n_reads) in chain_sizes.iter().enumerate() {
            let (genome, reads, triples) =
                make_chain(seed.wrapping_add(c as u64 * 7919), n_reads, all_reads.len() as u64);
            genomes.push(genome);
            all_reads.extend(reads);
            all_triples.extend(triples);
        }
        let n = all_reads.len();
        let expected_contigs = chain_sizes.len();
        let reads_in = all_reads.clone();
        let triples_in = all_triples;
        let contigs = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
            let grid = ProcGrid::new(comm);
            let store = ReadStore::from_replicated(&grid, &reads_in);
            let mine = if grid.world().rank() == 0 { triples_in.clone() } else { Vec::new() };
            let s = DistMat::from_triples(&grid, n, n, mine, |_, _| unreachable!());
            let (local, _) = contig_generation(&grid, &s, &store, &ContigConfig::default());
            gather_contigs(&grid, &local)
        }).remove(0);

        prop_assert_eq!(contigs.len(), expected_contigs);
        // Each contig must equal one of the chain genomes (either strand).
        for contig in &contigs {
            let hit = genomes.iter().any(|g| {
                contig.seq == *g || contig.seq == g.reverse_complement()
            });
            prop_assert!(
                hit,
                "contig of {} reads / {} bp matches no chain genome",
                contig.read_ids.len(),
                contig.seq.len()
            );
        }
        // Read ids partition correctly: all reads used exactly once.
        let mut used: Vec<u64> = contigs.iter().flat_map(|c| c.read_ids.clone()).collect();
        used.sort_unstable();
        prop_assert_eq!(used, (0..n as u64).collect::<Vec<_>>());
    }

    #[test]
    fn lpt_distributes_chains_across_ranks(
        seed in 0u64..10_000,
        n_chains in 4usize..9,
    ) {
        // With >= P equal chains, no rank should hold everything.
        let p = 4usize;
        let mut all_reads: Vec<Seq> = Vec::new();
        let mut all_triples: Vec<(u64, u64, SgEdge)> = Vec::new();
        for c in 0..n_chains {
            let (_, reads, triples) =
                make_chain(seed.wrapping_add(c as u64 * 104729), 3, all_reads.len() as u64);
            all_reads.extend(reads);
            all_triples.extend(triples);
        }
        let n = all_reads.len();
        let reads_in = all_reads;
        let triples_in = all_triples;
        let per_rank = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
            let grid = ProcGrid::new(comm);
            let store = ReadStore::from_replicated(&grid, &reads_in);
            let mine = if grid.world().rank() == 0 { triples_in.clone() } else { Vec::new() };
            let s = DistMat::from_triples(&grid, n, n, mine, |_, _| unreachable!());
            let (local, stats) = contig_generation(&grid, &s, &store, &ContigConfig::default());
            (local.len(), stats.n_components)
        });
        let counts: Vec<usize> = per_rank.iter().map(|&(c, _)| c).collect();
        let total: usize = counts.iter().sum();
        prop_assert_eq!(total, n_chains);
        prop_assert_eq!(per_rank[0].1 as usize, n_chains);
        // equal-size chains, n_chains >= p: LPT must not stack them all
        let max_on_one = *counts.iter().max().expect("p ranks");
        prop_assert!(
            max_on_one <= n_chains.div_ceil(p) + 1,
            "rank holds {} of {} chains",
            max_on_one,
            n_chains
        );
    }
}
