//! Overlap detection (`DetectOverlap`) and pairwise alignment
//! (`Alignment`) — lines 4–9 of the paper's Algorithm 1.
//!
//! `C = AAᵀ` is computed with the BELLA semiring over the distributed
//! SUMMA SpGEMM, pruned to the strict upper triangle (each read pair is
//! aligned once; the mirrored string-graph edge is emitted analytically).
//! Every surviving nonzero is x-drop aligned from its retained seeds and
//! classified into containment / internal / dovetail; containments feed
//! the `IsContainedRead` prune, dovetails become the symmetric pair of
//! directed edges of the overlap matrix `R`.

use elba_align::{
    classify, extend_seed_greedy, extend_seed_with, OverlapAln, OverlapClass, Scoring, SgEdge,
    XdropKernel, XdropWorkspace,
};
use elba_comm::ProcGrid;
use elba_seq::{AEntry, ReadStore};
use elba_sparse::{DistMat, DistVec, SpGemmOptions};

use crate::semirings::{OverlapSemiring, Seed, SharedSeeds};

/// Parameters of the overlap + alignment stage.
#[derive(Debug, Clone)]
pub struct OverlapConfig {
    pub k: usize,
    pub xdrop: i32,
    pub scoring: Scoring,
    /// Minimum shared k-mers for a candidate pair to be aligned.
    pub min_shared_kmers: u32,
    /// Minimum aligned span for a dovetail edge to survive.
    pub min_overlap: usize,
    /// Minimum alignment score as a fraction of the aligned span — the
    /// paper's `AlignmentScoreLessThan(t)` prune. Rejects spurious
    /// alignments seeded by coincidental shared k-mers (score ≈ 0 over a
    /// long "span") while keeping genuine noisy overlaps.
    pub min_score_ratio: f64,
    /// Overhang tolerance when classifying (x-drop may stop early).
    pub fuzz: usize,
    /// Schedule for the distributed `C = AAᵀ` multiply (pipelined by
    /// default; blocked bounds memory on large inputs).
    pub spgemm: SpGemmOptions,
    /// Intra-rank worker threads for the x-drop alignment batch (`0`
    /// inherits the global [`elba_par::ElbaPar`] knob; its default of 1
    /// is the historical serial sweep). Each worker owns one
    /// [`AlignScratch`], pairs are claimed by index, and results are
    /// consumed in pair order, so the output is identical across thread
    /// counts; workers never enter the comm layer.
    pub threads: usize,
    /// X-drop inner-loop implementation (the CLI's `--xdrop-kernel`).
    /// Every kernel returns exactly the scalar oracle's output, so this
    /// is a pure speed knob.
    pub kernel: XdropKernel,
    /// Which retained seeds get x-drop extended per candidate pair (the
    /// CLI's `--seed-chaining`).
    pub chaining: SeedChaining,
    /// Maximum |Δdiagonal| for two seeds of a pair to be merged into
    /// one co-linear chain, and the diagonal slack granted to a chain
    /// by the geometric early-reject (drift budget for x-drop gap
    /// wander; generous relative to real indel rates so the reject
    /// never clips a reachable overlap).
    pub chain_band: usize,
}

impl Default for OverlapConfig {
    fn default() -> Self {
        OverlapConfig {
            k: 31,
            xdrop: 15,
            scoring: Scoring::default(),
            min_shared_kmers: 1,
            min_overlap: 500,
            min_score_ratio: 0.55,
            fuzz: 200,
            spgemm: SpGemmOptions::default(),
            threads: 0,
            kernel: XdropKernel::default(),
            chaining: SeedChaining::default(),
            chain_band: 128,
        }
    }
}

/// Seed-selection policy of [`align_pair_with`]: how many of a
/// candidate pair's retained seeds are x-drop extended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SeedChaining {
    /// Extend every in-range retained seed (the historical sweep; the
    /// baseline every other mode is measured against).
    All,
    /// Bin seeds by strand and diagonal, merge co-linear seeds into one
    /// chain, extend each chain's first seed, and skip seeds whose
    /// anchor is already covered by an alignment found for this pair;
    /// chains that cannot geometrically reach `min_overlap` or a
    /// containment are rejected before any extension. Skipped work is
    /// visible in [`AlignStats::seeds_skipped`].
    #[default]
    Chain,
    /// Flagged fast mode: like [`SeedChaining::Chain`] but strictly one
    /// extension per strand group (the first surviving chain), and the
    /// extension itself runs the greedy O(differences)
    /// [`extend_seed_greedy`] walk instead of the exact DP. The one
    /// mode allowed to change alignments — it is quality-asserted by
    /// the perf bench rather than pinned byte-identical.
    BestOnly,
}

/// Counters reported by the alignment stage (for Fig. 5-style tables).
#[derive(Debug, Clone, Copy, Default)]
pub struct AlignStats {
    pub candidate_pairs: u64,
    pub aligned_pairs: u64,
    pub dovetails: u64,
    pub contained: u64,
    pub internal: u64,
    pub rejected: u64,
    /// Retained seeds the chain filter skipped without an x-drop
    /// extension (covered by an already-found alignment, merged into a
    /// chain behind an extended seed, geometrically rejected, or
    /// dropped by `BestOnly`). Zero under [`SeedChaining::All`].
    pub seeds_skipped: u64,
    /// Seed chains that underwent x-drop extension (under
    /// [`SeedChaining::All`] every extended seed counts as its own
    /// chain).
    pub chains_extended: u64,
}

impl AlignStats {
    fn merge(self, other: AlignStats) -> AlignStats {
        AlignStats {
            candidate_pairs: self.candidate_pairs + other.candidate_pairs,
            aligned_pairs: self.aligned_pairs + other.aligned_pairs,
            dovetails: self.dovetails + other.dovetails,
            contained: self.contained + other.contained,
            internal: self.internal + other.internal,
            rejected: self.rejected + other.rejected,
            seeds_skipped: self.seeds_skipped + other.seeds_skipped,
            chains_extended: self.chains_extended + other.chains_extended,
        }
    }

    pub fn allreduce(self, grid: &ProcGrid) -> AlignStats {
        let v = vec![
            self.candidate_pairs,
            self.aligned_pairs,
            self.dovetails,
            self.contained,
            self.internal,
            self.rejected,
            self.seeds_skipped,
            self.chains_extended,
        ];
        let merged = grid
            .world()
            .allreduce(v, |a, b| a.iter().zip(&b).map(|(x, y)| x + y).collect());
        AlignStats {
            candidate_pairs: merged[0],
            aligned_pairs: merged[1],
            dovetails: merged[2],
            contained: merged[3],
            internal: merged[4],
            rejected: merged[5],
            seeds_skipped: merged[6],
            chains_extended: merged[7],
        }
    }
}

/// `C = AAᵀ` restricted to the strict upper triangle, with candidate
/// pairs below the shared-k-mer threshold pruned (collective). The
/// prune is fused into the multiply: under the column-batched schedule
/// each output batch is thresholded as it completes, so only the pruned
/// candidate set is ever retained — the heart of ELBA's bounded-memory
/// overlap detection. The other schedules prune after the fact; the
/// result is identical either way.
pub fn candidate_matrix(
    grid: &ProcGrid,
    a: &DistMat<AEntry>,
    cfg: &OverlapConfig,
) -> DistMat<SharedSeeds> {
    let at = a.transpose(grid);
    a.spgemm_pruned_with(grid, &at, &OverlapSemiring, &cfg.spgemm, |r, col, v| {
        r < col && v.count >= cfg.min_shared_kmers
    })
}

/// Per-worker scratch of the alignment stage: the x-drop workspace plus
/// a reusable buffer for the lazily computed reverse complement of the
/// pair's second read. One scratch serves any number of candidate pairs
/// in sequence; `rc(v)` is recomputed per pair (it depends on `v`) but
/// its allocation is paid once per worker, and never filled at all for
/// pairs whose reverse-strand seeds are rejected before extension.
#[derive(Debug, Default)]
pub struct AlignScratch {
    ws: XdropWorkspace,
    v_rc: Vec<u8>,
}

impl AlignScratch {
    /// A scratch whose extensions run the given [`XdropKernel`].
    pub fn with_kernel(kernel: XdropKernel) -> Self {
        AlignScratch {
            ws: XdropWorkspace::with_kernel(kernel),
            v_rc: Vec::new(),
        }
    }

    /// Heap bytes held (workspace buffers + rc staging), for the same
    /// scratch-honesty accounting as [`XdropWorkspace::heap_bytes`].
    pub fn heap_bytes(&self) -> usize {
        self.ws.heap_bytes() + self.v_rc.len()
    }
}

/// Per-pair seed bookkeeping from [`align_pair_with`], merged into
/// [`AlignStats`] by the stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct PairCounts {
    /// Chains that underwent x-drop extension.
    chains: u32,
    /// Seeds skipped without extension.
    skipped: u32,
}

/// A retained seed in oriented coordinates: `u_pos` on `u`, `w_pos` on
/// `v`-as-aligned (reverse-complemented when `rc`), and the alignment
/// diagonal the anchor sits on.
#[derive(Debug, Clone, Copy)]
struct OrientedSeed {
    u_pos: usize,
    w_pos: usize,
    rc: bool,
    diag: i64,
}

impl OrientedSeed {
    /// Orient one retained seed; `None` if the anchor does not fit in
    /// either read (the historical sweep skipped those silently).
    fn place(seed: &Seed, k: usize, ulen: usize, vlen: usize) -> Option<OrientedSeed> {
        let u_pos = seed.pos_v as usize;
        let w_pos = if seed.same_strand {
            seed.pos_h as usize
        } else {
            vlen.checked_sub(seed.pos_h as usize + k)?
        };
        if u_pos + k > ulen || w_pos + k > vlen {
            return None;
        }
        Some(OrientedSeed {
            u_pos,
            w_pos,
            rc: !seed.same_strand,
            diag: u_pos as i64 - w_pos as i64,
        })
    }

    /// The seed's k-mer anchor lies inside an alignment already found
    /// on the same strand — extending it would re-walk the same
    /// corridor.
    fn covered_by(&self, aln: &OverlapAln, k: usize) -> bool {
        aln.rc == self.rc
            && aln.u_beg <= self.u_pos
            && self.u_pos + k - 1 <= aln.u_end
            && aln.w_beg <= self.w_pos
            && self.w_pos + k - 1 <= aln.w_end
    }
}

/// Geometric early-reject: over every diagonal within `chain_band` of
/// the chain's anchors, the largest conceivable aligned span can reach
/// neither a dovetail (`min_overlap`) nor a containment of either read
/// (`len - 2·fuzz`), so extension could only ever produce an alignment
/// the classifier discards without emitting edges. Only the stats
/// bucket of such a pair changes (rejected instead of internal).
fn chain_rejects(dg_lo: i64, dg_hi: i64, ulen: usize, wlen: usize, cfg: &OverlapConfig) -> bool {
    let band = cfg.chain_band as i64;
    let (lo, hi) = (dg_lo - band, dg_hi + band);
    let (ul, wl) = (ulen as i64, wlen as i64);
    let u_span = (ul.min(wl + hi) - 0.max(lo)).max(0);
    let w_span = (wl.min(ul - lo) - 0.max(-hi)).max(0);
    u_span < cfg.min_overlap as i64
        && u_span < ul - 2 * cfg.fuzz as i64
        && w_span < wl - 2 * cfg.fuzz as i64
}

/// One-shot [`align_pair_with`]: allocates a throwaway scratch.
pub fn align_pair(
    u_codes: &[u8],
    v_codes: &[u8],
    seeds: &SharedSeeds,
    cfg: &OverlapConfig,
) -> Option<OverlapAln> {
    align_pair_with(
        &mut AlignScratch::with_kernel(cfg.kernel),
        u_codes,
        v_codes,
        seeds,
        cfg,
    )
}

/// X-drop align one candidate pair from its retained seeds; returns the
/// best-scoring overlap alignment. The scratch's antidiagonal and rc
/// buffers are reused across seed extensions (and across calls — the
/// alignment stage sweeps one scratch per worker over every candidate
/// pair). Seed selection follows [`OverlapConfig::chaining`].
pub fn align_pair_with(
    scratch: &mut AlignScratch,
    u_codes: &[u8],
    v_codes: &[u8],
    seeds: &SharedSeeds,
    cfg: &OverlapConfig,
) -> Option<OverlapAln> {
    align_pair_counted(scratch, u_codes, v_codes, seeds, cfg).0
}

/// [`align_pair_with`] plus the per-pair chain/skip counters the stage
/// folds into [`AlignStats`].
fn align_pair_counted(
    scratch: &mut AlignScratch,
    u_codes: &[u8],
    v_codes: &[u8],
    seeds: &SharedSeeds,
    cfg: &OverlapConfig,
) -> (Option<OverlapAln>, PairCounts) {
    let AlignScratch { ws, v_rc } = scratch;
    let (ulen, vlen) = (u_codes.len(), v_codes.len());
    let mut best: Option<OverlapAln> = None;
    let mut counts = PairCounts::default();
    let mut rc_ready = false;
    let mut extend = |s: &OrientedSeed, best: &mut Option<OverlapAln>, v_rc: &mut Vec<u8>| {
        let w: &[u8] = if s.rc {
            if !rc_ready {
                v_rc.clear();
                v_rc.extend(v_codes.iter().rev().map(|&b| 3 - b));
                rc_ready = true;
            }
            v_rc
        } else {
            v_codes
        };
        // Best-only is the opt-in approximate fast mode: one extension
        // per strand AND the greedy O(differences) extender instead of
        // the exact DP (quality-asserted in the perf bench, never the
        // default).
        let extender = if cfg.chaining == SeedChaining::BestOnly {
            extend_seed_greedy
        } else {
            extend_seed_with
        };
        let aln = extender(
            ws,
            u_codes,
            w,
            s.u_pos,
            s.w_pos,
            cfg.k,
            cfg.xdrop,
            cfg.scoring,
        );
        let candidate = OverlapAln::from_seed(aln, s.rc, ulen, vlen);
        if best.as_ref().is_none_or(|b| candidate.score > b.score) {
            *best = Some(candidate);
        }
    };
    // SharedSeeds retains at most two seeds, so the chain plan reduces
    // to: are both on the same strand, and if so are they co-linear?
    let placed: Vec<OrientedSeed> = seeds
        .seeds()
        .iter()
        .filter_map(|s| OrientedSeed::place(s, cfg.k, ulen, vlen))
        .collect();
    match cfg.chaining {
        SeedChaining::All => {
            for s in &placed {
                extend(s, &mut best, v_rc);
                counts.chains += 1;
            }
        }
        SeedChaining::Chain | SeedChaining::BestOnly => {
            let best_only = cfg.chaining == SeedChaining::BestOnly;
            // Chains in seed order: [first seed, optional co-linear mate].
            let mut chains: Vec<(OrientedSeed, Option<OrientedSeed>)> = Vec::with_capacity(2);
            for &s in &placed {
                match chains.last_mut() {
                    Some((head, mate @ None))
                        if head.rc == s.rc
                            && head.diag.abs_diff(s.diag) <= cfg.chain_band as u64
                            && (head.u_pos <= s.u_pos) == (head.w_pos <= s.w_pos) =>
                    {
                        *mate = Some(s);
                    }
                    _ => chains.push((s, None)),
                }
            }
            let mut extended_strands = [false; 2];
            for (head, mate) in &chains {
                let n_seeds = 1 + u32::from(mate.is_some());
                let (dg_lo, dg_hi) = match mate {
                    Some(m) => (head.diag.min(m.diag), head.diag.max(m.diag)),
                    None => (head.diag, head.diag),
                };
                if chain_rejects(dg_lo, dg_hi, ulen, vlen, cfg) {
                    counts.skipped += n_seeds;
                    continue;
                }
                if best_only && extended_strands[head.rc as usize] {
                    counts.skipped += n_seeds;
                    continue;
                }
                if best.as_ref().is_some_and(|aln| head.covered_by(aln, cfg.k)) {
                    counts.skipped += n_seeds;
                    continue;
                }
                extend(head, &mut best, v_rc);
                counts.chains += 1;
                extended_strands[head.rc as usize] = true;
                if let Some(m) = mate {
                    let covered = best.as_ref().is_some_and(|aln| m.covered_by(aln, cfg.k));
                    if best_only || covered {
                        counts.skipped += 1;
                    } else {
                        extend(m, &mut best, v_rc);
                    }
                }
            }
        }
    }
    (best, counts)
}

/// Classification bookkeeping for one aligned (or rejected) candidate
/// pair — shared by the serial sweep and the batched threaded sweep, so
/// both consume alignments in pair order through identical logic.
fn classify_candidate(
    i: u64,
    j: u64,
    (aln, counts): (Option<OverlapAln>, PairCounts),
    cfg: &OverlapConfig,
    triples: &mut Vec<(u64, u64, SgEdge)>,
    contained_ids: &mut Vec<(usize, bool)>,
    stats: &mut AlignStats,
) {
    stats.candidate_pairs += 1;
    stats.seeds_skipped += counts.skipped as u64;
    stats.chains_extended += counts.chains as u64;
    let Some(aln) = aln else {
        stats.rejected += 1;
        return;
    };
    stats.aligned_pairs += 1;
    match classify(&aln, cfg.fuzz) {
        OverlapClass::ContainedU => {
            stats.contained += 1;
            contained_ids.push((i as usize, true));
        }
        OverlapClass::ContainedV => {
            stats.contained += 1;
            contained_ids.push((j as usize, true));
        }
        OverlapClass::Internal => stats.internal += 1,
        OverlapClass::Dovetail { fwd, bwd } => {
            let score_ok = aln.score as f64 >= cfg.min_score_ratio * aln.span() as f64;
            if aln.span() >= cfg.min_overlap && score_ok {
                stats.dovetails += 1;
                triples.push((i, j, fwd));
                triples.push((j, i, bwd));
            } else {
                stats.rejected += 1;
            }
        }
    }
}

/// Candidate pairs aligned per worker per batch in the threaded sweep:
/// enough work per scoped spawn to amortize it (alignments are
/// µs-to-ms each), small enough that the batch buffers stay a bounded
/// sliver (~100 B per pair) instead of materializing every candidate.
const ALIGN_PAIRS_PER_WORKER_BATCH: usize = 256;

/// Smallest batch worth fanning out to threads: below this the scoped
/// spawn/join cycle costs more than the alignments it parallelizes, so
/// the batch runs serially on worker 0 (mirrors `MIN_PAR_ROWS` in the
/// SpGEMM batcher). Keeps rank×thread oversubscription on small hosts
/// from turning trailing slivers into a regression.
const MIN_PAR_CANDIDATES: usize = 8;

/// Align one batch of candidate pairs on up to `scratches.len()`
/// workers (self-scheduled, results in pair order). Returns the
/// per-pair outcomes plus whether the batch genuinely fanned out —
/// batches smaller than [`MIN_PAR_CANDIDATES`] stay serial.
fn align_candidates<R: Send, F: Fn(usize, &mut AlignScratch) -> R + Sync>(
    n_pairs: usize,
    scratches: &mut [AlignScratch],
    f: F,
) -> (Vec<R>, bool) {
    let workers = if n_pairs < MIN_PAR_CANDIDATES {
        1
    } else {
        scratches.len().min(n_pairs)
    };
    let out = elba_par::run_indexed_with(n_pairs, &mut scratches[..workers], f);
    (out, workers > 1)
}

/// Align and classify every local candidate (collective because of the
/// sequence fetch). Returns the dovetail edge triples (both directions),
/// the contained-read mask, and global statistics. The alignment batch
/// runs on [`OverlapConfig::threads`] intra-rank workers — candidates
/// stream through bounded batches, one [`AlignScratch`] per worker,
/// with classification consuming each batch's alignments in pair order
/// — so results are identical across thread counts while resident
/// buffering stays O(batch), not O(candidates). With one thread this is
/// exactly the historical streaming sweep (one workspace, no batch
/// buffers). Workers never enter the comm layer.
pub fn align_and_classify(
    grid: &ProcGrid,
    c: &DistMat<SharedSeeds>,
    store: &ReadStore,
    cfg: &OverlapConfig,
) -> (Vec<(u64, u64, SgEdge)>, DistVec<bool>, AlignStats) {
    let seqs = store.fetch_block_aligned(grid);
    let mut triples: Vec<(u64, u64, SgEdge)> = Vec::new();
    let mut contained_ids: Vec<(usize, bool)> = Vec::new();
    let mut stats = AlignStats::default();
    let threads = elba_par::ElbaPar::resolve(cfg.threads);
    if threads <= 1 {
        // Historical serial sweep: one scratch, one pair resident.
        let mut scratch = AlignScratch::with_kernel(cfg.kernel);
        for (i, j, seeds) in c.iter_global(grid) {
            let u_codes = seqs
                .get(i)
                .unwrap_or_else(|| panic!("read {i} not fetched"));
            let v_codes = seqs
                .get(j)
                .unwrap_or_else(|| panic!("read {j} not fetched"));
            let aln = align_pair_counted(&mut scratch, u_codes, v_codes, seeds, cfg);
            classify_candidate(i, j, aln, cfg, &mut triples, &mut contained_ids, &mut stats);
        }
    } else {
        let mut scratches: Vec<AlignScratch> = (0..threads)
            .map(|_| AlignScratch::with_kernel(cfg.kernel))
            .collect();
        let mut candidates = c.iter_global(grid);
        let batch_pairs = threads * ALIGN_PAIRS_PER_WORKER_BATCH;
        let mut batch: Vec<(u64, u64, &SharedSeeds)> = Vec::with_capacity(batch_pairs);
        let mut par_secs = 0.0f64;
        let mut peak_batch = 0usize;
        loop {
            batch.clear();
            batch.extend(candidates.by_ref().take(batch_pairs));
            if batch.is_empty() {
                break;
            }
            peak_batch = peak_batch.max(batch.len());
            let started = std::time::Instant::now();
            let batch_ref = &batch;
            let seqs_ref = &seqs;
            let (alns, fanned_out) = align_candidates(batch.len(), &mut scratches, |p, scratch| {
                let (i, j, seeds) = batch_ref[p];
                let u_codes = seqs_ref
                    .get(i)
                    .unwrap_or_else(|| panic!("read {i} not fetched"));
                let v_codes = seqs_ref
                    .get(j)
                    .unwrap_or_else(|| panic!("read {j} not fetched"));
                align_pair_counted(scratch, u_codes, v_codes, seeds, cfg)
            });
            // `par-s` means "genuinely ran on > 1 worker": a trailing
            // sub-floor batch runs serial and books nothing.
            if fanned_out {
                par_secs += started.elapsed().as_secs_f64();
            }
            for (&(i, j, _), aln) in batch.iter().zip(alns) {
                classify_candidate(i, j, aln, cfg, &mut triples, &mut contained_ids, &mut stats);
            }
        }
        if par_secs > 0.0 {
            // Worker wall time books to this rank's active phase by
            // construction (the rank blocks on each batch); the
            // dedicated bucket makes the threaded span visible.
            grid.world().record_par_time(par_secs);
        }
        // Scratch beyond the serial baseline: extra worker scratches
        // (worker 0's is the one the serial sweep has always owned
        // uncharged — same convention as `SpGemmBatcher::scratch_bytes`)
        // plus the batch pair/alignment buffers the serial sweep
        // doesn't hold.
        let scratch: usize = scratches
            .iter()
            .skip(1)
            .map(AlignScratch::heap_bytes)
            .sum::<usize>()
            + peak_batch
                * (std::mem::size_of::<(u64, u64, &SharedSeeds)>()
                    + std::mem::size_of::<(Option<OverlapAln>, PairCounts)>());
        grid.world().record_mem_transient(scratch);
    }
    let mut contained = DistVec::from_fn(grid, store.n_global(), |_| false);
    contained.scatter_combine(grid, contained_ids, |acc, v| *acc |= v);
    let stats = AlignStats::default().merge(stats).allreduce(grid);
    (triples, contained, stats)
}

/// Assemble the overlap matrix `R` from dovetail triples and prune the
/// rows/columns of contained reads (Algorithm 1 lines 8–9). Collective.
pub fn overlap_graph(
    grid: &ProcGrid,
    n_reads: usize,
    triples: Vec<(u64, u64, SgEdge)>,
    contained: &DistVec<bool>,
) -> DistMat<SgEdge> {
    let r = DistMat::from_triples(grid, n_reads, n_reads, triples, |acc, v| {
        // Two seeds of the same pair can classify to the same directed
        // edge; keep the tighter overlap (smaller overhang).
        if v.suffix < acc.suffix {
            *acc = v;
        }
    });
    r.mask_rows_cols(grid, contained)
}

#[cfg(test)]
mod tests {
    use super::*;
    use elba_comm::{Backend, Runner};
    use elba_seq::{build_a_triples, count_kmers, KmerConfig, Seq};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn genome(len: usize, seed: u64) -> Seq {
        let mut rng = StdRng::seed_from_u64(seed);
        Seq::from_codes((0..len).map(|_| rng.gen_range(0..4u8)).collect())
    }

    /// Tile a genome with overlapping error-free reads, alternating strands.
    fn tiled_reads(g: &Seq, read_len: usize, stride: usize) -> Vec<Seq> {
        let mut reads = Vec::new();
        let mut start = 0;
        let mut flip = false;
        while start + read_len <= g.len() {
            let r = g.substring(start, start + read_len);
            reads.push(if flip { r.reverse_complement() } else { r });
            flip = !flip;
            start += stride;
        }
        reads
    }

    fn test_cfg() -> OverlapConfig {
        OverlapConfig {
            k: 15,
            xdrop: 10,
            min_overlap: 30,
            fuzz: 10,
            threads: 1,
            ..OverlapConfig::default()
        }
    }

    #[test]
    fn pipeline_to_overlap_graph_is_linear_chain() {
        for p in [1usize, 4] {
            let out = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
                let grid = ProcGrid::new(comm);
                let g = genome(600, 42);
                let reads = tiled_reads(&g, 200, 100);
                let n = reads.len();
                let store = ReadStore::from_replicated(&grid, &reads);
                let cfg = test_cfg();
                let kcfg = KmerConfig {
                    k: cfg.k,
                    reliable_min: 2,
                    reliable_max: 16,
                    ..KmerConfig::default()
                };
                let table = count_kmers(&grid, &store, &kcfg);
                let a_triples = build_a_triples(&grid, &store, &table, &kcfg);
                let a = DistMat::from_triples(
                    &grid,
                    n,
                    table.n_global as usize,
                    a_triples,
                    |acc, v: AEntry| {
                        if v.pos < acc.pos {
                            *acc = v;
                        }
                    },
                );
                let c = candidate_matrix(&grid, &a, &cfg);
                let (triples, contained, stats) = align_and_classify(&grid, &c, &store, &cfg);
                let r = overlap_graph(&grid, n, triples, &contained);
                let degrees = r.row_degrees(&grid).to_global(&grid);
                (degrees, stats.dovetails, n)
            });
            let (degrees, dovetails, n) = &out[0];
            // consecutive 200-base reads at stride 100 overlap by 100;
            // reads two apart share nothing → a clean path graph.
            assert!(
                *dovetails >= (*n as u64) - 1,
                "p={p}: dovetails={dovetails}"
            );
            assert_eq!(degrees.len(), *n);
            let ends = degrees.iter().filter(|&&d| d == 1).count();
            assert!(ends >= 2, "chain endpoints, got degrees {degrees:?}");
            assert!(degrees.iter().all(|&d| d >= 1), "no isolated reads");
        }
    }

    #[test]
    fn pipelined_overlap_stage_reports_wait_separately() {
        // Acceptance check for the pipelined SUMMA refactor: a profiled
        // DetectOverlap phase must (a) produce the same candidate matrix
        // as the eager schedule and (b) attribute non-blocking wait time
        // in its own bucket, with ibcast traffic visible — proving the
        // overlap is instrumented, not just claimed.
        let mut results: Vec<Vec<(u64, u64, u32)>> = Vec::new();
        for eager in [false, true] {
            let (out, profile) = elba_comm::Runner::new(Backend::InProcess)
                .ranks(4)
                .run_profiled(move |comm| {
                    let grid = ProcGrid::new(comm);
                    let g = genome(600, 42);
                    let reads = tiled_reads(&g, 200, 100);
                    let n = reads.len();
                    let store = ReadStore::from_replicated(&grid, &reads);
                    let mut cfg = test_cfg();
                    cfg.spgemm = if eager {
                        elba_sparse::SpGemmOptions::eager()
                    } else {
                        elba_sparse::SpGemmOptions::pipelined()
                    };
                    let kcfg = KmerConfig {
                        k: cfg.k,
                        reliable_min: 2,
                        reliable_max: 16,
                        ..KmerConfig::default()
                    };
                    let table = count_kmers(&grid, &store, &kcfg);
                    let a_triples = build_a_triples(&grid, &store, &table, &kcfg);
                    let a = DistMat::from_triples(
                        &grid,
                        n,
                        table.n_global as usize,
                        a_triples,
                        |acc, v: AEntry| {
                            if v.pos < acc.pos {
                                *acc = v;
                            }
                        },
                    );
                    let c = {
                        let _g = grid.world().phase("DetectOverlap");
                        candidate_matrix(&grid, &a, &cfg)
                    };
                    let mut triples: Vec<(u64, u64, u32)> = c
                        .gather_triples(&grid)
                        .into_iter()
                        .map(|(r, s, v)| (r, s, v.count))
                        .collect();
                    triples.sort_unstable();
                    triples
                });
            if eager {
                assert_eq!(
                    profile.max_wait_secs("DetectOverlap"),
                    0.0,
                    "eager schedule never parks in a request wait"
                );
            } else {
                assert!(
                    profile.max_wait_secs("DetectOverlap") > 0.0,
                    "pipelined schedule must book its request waits in the wait bucket"
                );
                let ibcasts: u64 = profile
                    .rank_profiles()
                    .iter()
                    .filter_map(|r| r.phase("DetectOverlap"))
                    .flat_map(|p| p.collectives.iter())
                    .filter(|(op, _, _)| *op == "ibcast")
                    .map(|&(_, calls, _)| calls)
                    .sum();
                // q = 2 stages × 2 (A and B) ibcasts per rank, 4 ranks.
                assert_eq!(ibcasts, 16, "every SUMMA stage must go through ibcast");
            }
            results.push(out.into_iter().next().expect("rank 0"));
        }
        assert_eq!(
            results[0], results[1],
            "pipelined and eager candidates must agree"
        );
    }

    #[test]
    fn threaded_alignment_stage_matches_serial() {
        // The whole DetectOverlap + Alignment front end at `threads = 4`
        // must reproduce the serial run exactly: same dovetail triples,
        // same contained mask, same stats — and identical per-rank
        // profiled wire bytes, because workers never touch the comm
        // layer. This is the stage-level face of the determinism
        // contract (the SpGEMM and x-drop kernels are pinned
        // separately).
        let mut runs = Vec::new();
        for threads in [1usize, 4] {
            let (out, profile) = elba_comm::Runner::new(Backend::InProcess)
                .ranks(4)
                .run_profiled(move |comm| {
                    let grid = ProcGrid::new(comm);
                    let g = genome(900, 53);
                    let reads = tiled_reads(&g, 200, 100);
                    let n = reads.len();
                    let store = ReadStore::from_replicated(&grid, &reads);
                    let mut cfg = test_cfg();
                    cfg.threads = threads;
                    cfg.spgemm = cfg.spgemm.with_threads(threads);
                    let kcfg = KmerConfig {
                        k: cfg.k,
                        reliable_min: 2,
                        reliable_max: 16,
                        threads,
                        ..KmerConfig::default()
                    };
                    let _g = grid.world().phase("front");
                    let table = count_kmers(&grid, &store, &kcfg);
                    let a_triples = build_a_triples(&grid, &store, &table, &kcfg);
                    let a = DistMat::from_triples(
                        &grid,
                        n,
                        table.n_global as usize,
                        a_triples,
                        |acc, v: AEntry| {
                            if v.pos < acc.pos {
                                *acc = v;
                            }
                        },
                    );
                    let c = candidate_matrix(&grid, &a, &cfg);
                    let (mut triples, contained, stats) =
                        align_and_classify(&grid, &c, &store, &cfg);
                    triples.sort_by_key(|&(i, j, _)| (i, j));
                    (
                        triples,
                        contained.to_global(&grid),
                        (stats.candidate_pairs, stats.dovetails, stats.contained),
                    )
                });
            let bytes: Vec<u64> = profile
                .rank_profiles()
                .iter()
                .map(|r| r.phase("front").map_or(0, |p| p.bytes_sent()))
                .collect();
            let wall = profile.max_wall("front");
            let par = profile.max_par_secs("front");
            if threads == 1 {
                assert_eq!(par, 0.0, "serial runs must not book par time");
            } else {
                assert!(par > 0.0, "threaded runs must book par time");
                assert!(par <= wall + 1e-9, "par time is a subset of wall time");
            }
            runs.push((out.into_iter().next().expect("rank 0"), bytes));
        }
        assert_eq!(
            runs[0].0, runs[1].0,
            "threads must not change the stage output"
        );
        assert_eq!(runs[0].1, runs[1].1, "threads must not change wire bytes");
    }

    #[test]
    fn align_pair_same_strand() {
        let g = genome(300, 7);
        let u = g.substring(0, 200);
        let v = g.substring(100, 300);
        let cfg = test_cfg();
        // seed inside the true overlap g[100..200): u_pos 120, v_pos 20
        let seeds = SharedSeeds::single(crate::semirings::Seed {
            pos_v: 120,
            pos_h: 20,
            same_strand: true,
        });
        let aln = align_pair(u.codes(), v.codes(), &seeds, &cfg).expect("alignment");
        assert!(!aln.rc);
        assert_eq!(aln.u_beg, 100);
        assert_eq!(aln.u_end, 199);
        assert_eq!(aln.w_beg, 0);
        assert_eq!(aln.w_end, 99);
    }

    #[test]
    fn align_pair_opposite_strand() {
        let g = genome(300, 8);
        let u = g.substring(0, 200);
        let v = g.substring(100, 300).reverse_complement();
        let cfg = test_cfg();
        // canonical k-mer at u pos 150 sits at w pos 50 (w = rc(v) =
        // g[100..300)); in v-forward coordinates that's 200-50-15 = 135.
        let seeds = SharedSeeds::single(crate::semirings::Seed {
            pos_v: 150,
            pos_h: 135,
            same_strand: false,
        });
        let aln = align_pair(u.codes(), v.codes(), &seeds, &cfg).expect("alignment");
        assert!(aln.rc);
        assert_eq!(aln.u_beg, 100);
        assert_eq!(aln.u_end, 199);
        assert_eq!(aln.w_beg, 0);
        assert_eq!(aln.w_end, 99);
    }

    #[test]
    fn contained_reads_masked_out() {
        let out = Runner::new(Backend::InProcess).ranks(4).run(|comm| {
            let grid = ProcGrid::new(comm);
            let g = genome(400, 11);
            // read 1 is contained inside read 0; read 2 dovetails read 0.
            let reads = vec![
                g.substring(0, 300),
                g.substring(50, 250),
                g.substring(200, 400),
            ];
            let store = ReadStore::from_replicated(&grid, &reads);
            let cfg = test_cfg();
            let kcfg = KmerConfig {
                k: cfg.k,
                reliable_min: 2,
                reliable_max: 16,
                ..KmerConfig::default()
            };
            let table = count_kmers(&grid, &store, &kcfg);
            let a_triples = build_a_triples(&grid, &store, &table, &kcfg);
            let a = DistMat::from_triples(
                &grid,
                3,
                table.n_global as usize,
                a_triples,
                |acc, v: AEntry| {
                    if v.pos < acc.pos {
                        *acc = v;
                    }
                },
            );
            let c = candidate_matrix(&grid, &a, &cfg);
            let (triples, contained, stats) = align_and_classify(&grid, &c, &store, &cfg);
            let r = overlap_graph(&grid, 3, triples, &contained);
            let degrees = r.row_degrees(&grid).to_global(&grid);
            (degrees, contained.to_global(&grid), stats.contained)
        });
        let (degrees, contained, n_contained) = &out[0];
        assert!(*n_contained >= 1);
        assert!(contained[1], "middle read is contained");
        assert_eq!(degrees[1], 0, "contained read must lose all edges");
        assert_eq!(degrees[0], 1);
        assert_eq!(degrees[2], 1);
    }
}
