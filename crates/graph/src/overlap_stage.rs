//! Overlap detection (`DetectOverlap`) and pairwise alignment
//! (`Alignment`) — lines 4–9 of the paper's Algorithm 1.
//!
//! `C = AAᵀ` is computed with the BELLA semiring over the distributed
//! SUMMA SpGEMM, pruned to the strict upper triangle (each read pair is
//! aligned once; the mirrored string-graph edge is emitted analytically).
//! Every surviving nonzero is x-drop aligned from its retained seeds and
//! classified into containment / internal / dovetail; containments feed
//! the `IsContainedRead` prune, dovetails become the symmetric pair of
//! directed edges of the overlap matrix `R`.

use elba_align::{
    classify, extend_seed_with, OverlapAln, OverlapClass, Scoring, SgEdge, XdropWorkspace,
};
use elba_comm::ProcGrid;
use elba_seq::{AEntry, ReadStore};
use elba_sparse::{DistMat, DistVec, SpGemmOptions};

use crate::semirings::{OverlapSemiring, SharedSeeds};

/// Parameters of the overlap + alignment stage.
#[derive(Debug, Clone)]
pub struct OverlapConfig {
    pub k: usize,
    pub xdrop: i32,
    pub scoring: Scoring,
    /// Minimum shared k-mers for a candidate pair to be aligned.
    pub min_shared_kmers: u32,
    /// Minimum aligned span for a dovetail edge to survive.
    pub min_overlap: usize,
    /// Minimum alignment score as a fraction of the aligned span — the
    /// paper's `AlignmentScoreLessThan(t)` prune. Rejects spurious
    /// alignments seeded by coincidental shared k-mers (score ≈ 0 over a
    /// long "span") while keeping genuine noisy overlaps.
    pub min_score_ratio: f64,
    /// Overhang tolerance when classifying (x-drop may stop early).
    pub fuzz: usize,
    /// Schedule for the distributed `C = AAᵀ` multiply (pipelined by
    /// default; blocked bounds memory on large inputs).
    pub spgemm: SpGemmOptions,
    /// Intra-rank worker threads for the x-drop alignment batch (`0`
    /// inherits the global [`elba_par::ElbaPar`] knob; its default of 1
    /// is the historical serial sweep). Each worker owns one
    /// [`XdropWorkspace`], pairs are claimed by index, and results are
    /// consumed in pair order, so the output is identical across thread
    /// counts; workers never enter the comm layer.
    pub threads: usize,
}

impl Default for OverlapConfig {
    fn default() -> Self {
        OverlapConfig {
            k: 31,
            xdrop: 15,
            scoring: Scoring::default(),
            min_shared_kmers: 1,
            min_overlap: 500,
            min_score_ratio: 0.55,
            fuzz: 200,
            spgemm: SpGemmOptions::default(),
            threads: 0,
        }
    }
}

/// Counters reported by the alignment stage (for Fig. 5-style tables).
#[derive(Debug, Clone, Copy, Default)]
pub struct AlignStats {
    pub candidate_pairs: u64,
    pub aligned_pairs: u64,
    pub dovetails: u64,
    pub contained: u64,
    pub internal: u64,
    pub rejected: u64,
}

impl AlignStats {
    fn merge(self, other: AlignStats) -> AlignStats {
        AlignStats {
            candidate_pairs: self.candidate_pairs + other.candidate_pairs,
            aligned_pairs: self.aligned_pairs + other.aligned_pairs,
            dovetails: self.dovetails + other.dovetails,
            contained: self.contained + other.contained,
            internal: self.internal + other.internal,
            rejected: self.rejected + other.rejected,
        }
    }

    pub fn allreduce(self, grid: &ProcGrid) -> AlignStats {
        let v = vec![
            self.candidate_pairs,
            self.aligned_pairs,
            self.dovetails,
            self.contained,
            self.internal,
            self.rejected,
        ];
        let merged = grid
            .world()
            .allreduce(v, |a, b| a.iter().zip(&b).map(|(x, y)| x + y).collect());
        AlignStats {
            candidate_pairs: merged[0],
            aligned_pairs: merged[1],
            dovetails: merged[2],
            contained: merged[3],
            internal: merged[4],
            rejected: merged[5],
        }
    }
}

/// `C = AAᵀ` restricted to the strict upper triangle, with candidate
/// pairs below the shared-k-mer threshold pruned (collective). The
/// prune is fused into the multiply: under the column-batched schedule
/// each output batch is thresholded as it completes, so only the pruned
/// candidate set is ever retained — the heart of ELBA's bounded-memory
/// overlap detection. The other schedules prune after the fact; the
/// result is identical either way.
pub fn candidate_matrix(
    grid: &ProcGrid,
    a: &DistMat<AEntry>,
    cfg: &OverlapConfig,
) -> DistMat<SharedSeeds> {
    let at = a.transpose(grid);
    a.spgemm_pruned_with(grid, &at, &OverlapSemiring, &cfg.spgemm, |r, col, v| {
        r < col && v.count >= cfg.min_shared_kmers
    })
}

/// One-shot [`align_pair_with`]: allocates a throwaway workspace.
pub fn align_pair(
    u_codes: &[u8],
    v_codes: &[u8],
    seeds: &SharedSeeds,
    cfg: &OverlapConfig,
) -> Option<OverlapAln> {
    align_pair_with(&mut XdropWorkspace::default(), u_codes, v_codes, seeds, cfg)
}

/// X-drop align one candidate pair from its retained seeds; returns the
/// best-scoring overlap alignment. The workspace's antidiagonal buffers
/// are reused across seed extensions (and across calls — the alignment
/// stage sweeps one workspace over every candidate pair).
pub fn align_pair_with(
    ws: &mut XdropWorkspace,
    u_codes: &[u8],
    v_codes: &[u8],
    seeds: &SharedSeeds,
    cfg: &OverlapConfig,
) -> Option<OverlapAln> {
    let mut best: Option<OverlapAln> = None;
    // Compute rc(v) lazily, once, if any seed needs it.
    let mut v_rc: Option<Vec<u8>> = None;
    for seed in seeds.seeds() {
        let candidate = if seed.same_strand {
            if seed.pos_v as usize + cfg.k > u_codes.len()
                || seed.pos_h as usize + cfg.k > v_codes.len()
            {
                continue;
            }
            let aln = extend_seed_with(
                ws,
                u_codes,
                v_codes,
                seed.pos_v as usize,
                seed.pos_h as usize,
                cfg.k,
                cfg.xdrop,
                cfg.scoring,
            );
            OverlapAln::from_seed(aln, false, u_codes.len(), v_codes.len())
        } else {
            let w = v_rc
                .get_or_insert_with(|| v_codes.iter().rev().map(|&b| 3 - b).collect::<Vec<u8>>());
            let w_pos = v_codes.len() - seed.pos_h as usize - cfg.k;
            if seed.pos_v as usize + cfg.k > u_codes.len() || w_pos + cfg.k > w.len() {
                continue;
            }
            let aln = extend_seed_with(
                ws,
                u_codes,
                w,
                seed.pos_v as usize,
                w_pos,
                cfg.k,
                cfg.xdrop,
                cfg.scoring,
            );
            OverlapAln::from_seed(aln, true, u_codes.len(), v_codes.len())
        };
        if best.as_ref().is_none_or(|b| candidate.score > b.score) {
            best = Some(candidate);
        }
    }
    best
}

/// Classification bookkeeping for one aligned (or rejected) candidate
/// pair — shared by the serial sweep and the batched threaded sweep, so
/// both consume alignments in pair order through identical logic.
fn classify_candidate(
    i: u64,
    j: u64,
    aln: Option<OverlapAln>,
    cfg: &OverlapConfig,
    triples: &mut Vec<(u64, u64, SgEdge)>,
    contained_ids: &mut Vec<(usize, bool)>,
    stats: &mut AlignStats,
) {
    stats.candidate_pairs += 1;
    let Some(aln) = aln else {
        stats.rejected += 1;
        return;
    };
    stats.aligned_pairs += 1;
    match classify(&aln, cfg.fuzz) {
        OverlapClass::ContainedU => {
            stats.contained += 1;
            contained_ids.push((i as usize, true));
        }
        OverlapClass::ContainedV => {
            stats.contained += 1;
            contained_ids.push((j as usize, true));
        }
        OverlapClass::Internal => stats.internal += 1,
        OverlapClass::Dovetail { fwd, bwd } => {
            let score_ok = aln.score as f64 >= cfg.min_score_ratio * aln.span() as f64;
            if aln.span() >= cfg.min_overlap && score_ok {
                stats.dovetails += 1;
                triples.push((i, j, fwd));
                triples.push((j, i, bwd));
            } else {
                stats.rejected += 1;
            }
        }
    }
}

/// Candidate pairs aligned per worker per batch in the threaded sweep:
/// enough work per scoped spawn to amortize it (alignments are
/// µs-to-ms each), small enough that the batch buffers stay a bounded
/// sliver (~100 B per pair) instead of materializing every candidate.
const ALIGN_PAIRS_PER_WORKER_BATCH: usize = 256;

/// Align and classify every local candidate (collective because of the
/// sequence fetch). Returns the dovetail edge triples (both directions),
/// the contained-read mask, and global statistics. The alignment batch
/// runs on [`OverlapConfig::threads`] intra-rank workers — candidates
/// stream through bounded batches, one [`XdropWorkspace`] per worker,
/// with classification consuming each batch's alignments in pair order
/// — so results are identical across thread counts while resident
/// buffering stays O(batch), not O(candidates). With one thread this is
/// exactly the historical streaming sweep (one workspace, no batch
/// buffers). Workers never enter the comm layer.
pub fn align_and_classify(
    grid: &ProcGrid,
    c: &DistMat<SharedSeeds>,
    store: &ReadStore,
    cfg: &OverlapConfig,
) -> (Vec<(u64, u64, SgEdge)>, DistVec<bool>, AlignStats) {
    let seqs = store.fetch_block_aligned(grid);
    let mut triples: Vec<(u64, u64, SgEdge)> = Vec::new();
    let mut contained_ids: Vec<(usize, bool)> = Vec::new();
    let mut stats = AlignStats::default();
    let threads = elba_par::ElbaPar::resolve(cfg.threads);
    if threads <= 1 {
        // Historical serial sweep: one workspace, one pair resident.
        let mut ws = XdropWorkspace::default();
        for (i, j, seeds) in c.iter_global(grid) {
            let u_codes = seqs
                .get(i)
                .unwrap_or_else(|| panic!("read {i} not fetched"));
            let v_codes = seqs
                .get(j)
                .unwrap_or_else(|| panic!("read {j} not fetched"));
            let aln = align_pair_with(&mut ws, u_codes, v_codes, seeds, cfg);
            classify_candidate(i, j, aln, cfg, &mut triples, &mut contained_ids, &mut stats);
        }
    } else {
        let mut workspaces: Vec<XdropWorkspace> =
            (0..threads).map(|_| XdropWorkspace::default()).collect();
        let mut candidates = c.iter_global(grid);
        let batch_pairs = threads * ALIGN_PAIRS_PER_WORKER_BATCH;
        let mut batch: Vec<(u64, u64, &SharedSeeds)> = Vec::with_capacity(batch_pairs);
        let mut par_secs = 0.0f64;
        let mut peak_batch = 0usize;
        loop {
            batch.clear();
            batch.extend(candidates.by_ref().take(batch_pairs));
            if batch.is_empty() {
                break;
            }
            peak_batch = peak_batch.max(batch.len());
            let workers = threads.min(batch.len());
            let started = std::time::Instant::now();
            let batch_ref = &batch;
            let seqs_ref = &seqs;
            let alns =
                elba_par::run_indexed_with(batch.len(), &mut workspaces[..workers], |p, ws| {
                    let (i, j, seeds) = batch_ref[p];
                    let u_codes = seqs_ref
                        .get(i)
                        .unwrap_or_else(|| panic!("read {i} not fetched"));
                    let v_codes = seqs_ref
                        .get(j)
                        .unwrap_or_else(|| panic!("read {j} not fetched"));
                    align_pair_with(ws, u_codes, v_codes, seeds, cfg)
                });
            // `par-s` means "genuinely ran on > 1 worker": a trailing
            // single-pair batch runs serial and books nothing.
            if workers > 1 {
                par_secs += started.elapsed().as_secs_f64();
            }
            for (&(i, j, _), aln) in batch.iter().zip(alns) {
                classify_candidate(i, j, aln, cfg, &mut triples, &mut contained_ids, &mut stats);
            }
        }
        if par_secs > 0.0 {
            // Worker wall time books to this rank's active phase by
            // construction (the rank blocks on each batch); the
            // dedicated bucket makes the threaded span visible.
            grid.world().record_par_time(par_secs);
        }
        // Scratch beyond the serial baseline: extra workspaces (worker
        // 0's is the one the serial sweep has always owned uncharged —
        // same convention as `SpGemmBatcher::scratch_bytes`) plus the
        // batch pair/alignment buffers the serial sweep doesn't hold.
        let scratch: usize = workspaces
            .iter()
            .skip(1)
            .map(XdropWorkspace::heap_bytes)
            .sum::<usize>()
            + peak_batch
                * (std::mem::size_of::<(u64, u64, &SharedSeeds)>()
                    + std::mem::size_of::<Option<OverlapAln>>());
        grid.world().record_mem_transient(scratch);
    }
    let mut contained = DistVec::from_fn(grid, store.n_global(), |_| false);
    contained.scatter_combine(grid, contained_ids, |acc, v| *acc |= v);
    let stats = AlignStats::default().merge(stats).allreduce(grid);
    (triples, contained, stats)
}

/// Assemble the overlap matrix `R` from dovetail triples and prune the
/// rows/columns of contained reads (Algorithm 1 lines 8–9). Collective.
pub fn overlap_graph(
    grid: &ProcGrid,
    n_reads: usize,
    triples: Vec<(u64, u64, SgEdge)>,
    contained: &DistVec<bool>,
) -> DistMat<SgEdge> {
    let r = DistMat::from_triples(grid, n_reads, n_reads, triples, |acc, v| {
        // Two seeds of the same pair can classify to the same directed
        // edge; keep the tighter overlap (smaller overhang).
        if v.suffix < acc.suffix {
            *acc = v;
        }
    });
    r.mask_rows_cols(grid, contained)
}

#[cfg(test)]
mod tests {
    use super::*;
    use elba_comm::Cluster;
    use elba_seq::{build_a_triples, count_kmers, KmerConfig, Seq};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn genome(len: usize, seed: u64) -> Seq {
        let mut rng = StdRng::seed_from_u64(seed);
        Seq::from_codes((0..len).map(|_| rng.gen_range(0..4u8)).collect())
    }

    /// Tile a genome with overlapping error-free reads, alternating strands.
    fn tiled_reads(g: &Seq, read_len: usize, stride: usize) -> Vec<Seq> {
        let mut reads = Vec::new();
        let mut start = 0;
        let mut flip = false;
        while start + read_len <= g.len() {
            let r = g.substring(start, start + read_len);
            reads.push(if flip { r.reverse_complement() } else { r });
            flip = !flip;
            start += stride;
        }
        reads
    }

    fn test_cfg() -> OverlapConfig {
        OverlapConfig {
            k: 15,
            xdrop: 10,
            scoring: Scoring::default(),
            min_shared_kmers: 1,
            min_overlap: 30,
            min_score_ratio: 0.55,
            fuzz: 10,
            spgemm: elba_sparse::SpGemmOptions::default(),
            threads: 1,
        }
    }

    #[test]
    fn pipeline_to_overlap_graph_is_linear_chain() {
        for p in [1usize, 4] {
            let out = Cluster::run(p, move |comm| {
                let grid = ProcGrid::new(comm);
                let g = genome(600, 42);
                let reads = tiled_reads(&g, 200, 100);
                let n = reads.len();
                let store = ReadStore::from_replicated(&grid, &reads);
                let cfg = test_cfg();
                let kcfg = KmerConfig {
                    k: cfg.k,
                    reliable_min: 2,
                    reliable_max: 16,
                    ..KmerConfig::default()
                };
                let table = count_kmers(&grid, &store, &kcfg);
                let a_triples = build_a_triples(&grid, &store, &table, &kcfg);
                let a = DistMat::from_triples(
                    &grid,
                    n,
                    table.n_global as usize,
                    a_triples,
                    |acc, v: AEntry| {
                        if v.pos < acc.pos {
                            *acc = v;
                        }
                    },
                );
                let c = candidate_matrix(&grid, &a, &cfg);
                let (triples, contained, stats) = align_and_classify(&grid, &c, &store, &cfg);
                let r = overlap_graph(&grid, n, triples, &contained);
                let degrees = r.row_degrees(&grid).to_global(&grid);
                (degrees, stats.dovetails, n)
            });
            let (degrees, dovetails, n) = &out[0];
            // consecutive 200-base reads at stride 100 overlap by 100;
            // reads two apart share nothing → a clean path graph.
            assert!(
                *dovetails >= (*n as u64) - 1,
                "p={p}: dovetails={dovetails}"
            );
            assert_eq!(degrees.len(), *n);
            let ends = degrees.iter().filter(|&&d| d == 1).count();
            assert!(ends >= 2, "chain endpoints, got degrees {degrees:?}");
            assert!(degrees.iter().all(|&d| d >= 1), "no isolated reads");
        }
    }

    #[test]
    fn pipelined_overlap_stage_reports_wait_separately() {
        // Acceptance check for the pipelined SUMMA refactor: a profiled
        // DetectOverlap phase must (a) produce the same candidate matrix
        // as the eager schedule and (b) attribute non-blocking wait time
        // in its own bucket, with ibcast traffic visible — proving the
        // overlap is instrumented, not just claimed.
        let mut results: Vec<Vec<(u64, u64, u32)>> = Vec::new();
        for eager in [false, true] {
            let (out, profile) = elba_comm::Cluster::run_profiled(4, move |comm| {
                let grid = ProcGrid::new(comm);
                let g = genome(600, 42);
                let reads = tiled_reads(&g, 200, 100);
                let n = reads.len();
                let store = ReadStore::from_replicated(&grid, &reads);
                let mut cfg = test_cfg();
                cfg.spgemm = if eager {
                    elba_sparse::SpGemmOptions::eager()
                } else {
                    elba_sparse::SpGemmOptions::pipelined()
                };
                let kcfg = KmerConfig {
                    k: cfg.k,
                    reliable_min: 2,
                    reliable_max: 16,
                    ..KmerConfig::default()
                };
                let table = count_kmers(&grid, &store, &kcfg);
                let a_triples = build_a_triples(&grid, &store, &table, &kcfg);
                let a = DistMat::from_triples(
                    &grid,
                    n,
                    table.n_global as usize,
                    a_triples,
                    |acc, v: AEntry| {
                        if v.pos < acc.pos {
                            *acc = v;
                        }
                    },
                );
                let c = {
                    let _g = grid.world().phase("DetectOverlap");
                    candidate_matrix(&grid, &a, &cfg)
                };
                let mut triples: Vec<(u64, u64, u32)> = c
                    .gather_triples(&grid)
                    .into_iter()
                    .map(|(r, s, v)| (r, s, v.count))
                    .collect();
                triples.sort_unstable();
                triples
            });
            if eager {
                assert_eq!(
                    profile.max_wait_secs("DetectOverlap"),
                    0.0,
                    "eager schedule never parks in a request wait"
                );
            } else {
                assert!(
                    profile.max_wait_secs("DetectOverlap") > 0.0,
                    "pipelined schedule must book its request waits in the wait bucket"
                );
                let ibcasts: u64 = profile
                    .rank_profiles()
                    .iter()
                    .filter_map(|r| r.phase("DetectOverlap"))
                    .flat_map(|p| p.collectives.iter())
                    .filter(|(op, _, _)| *op == "ibcast")
                    .map(|&(_, calls, _)| calls)
                    .sum();
                // q = 2 stages × 2 (A and B) ibcasts per rank, 4 ranks.
                assert_eq!(ibcasts, 16, "every SUMMA stage must go through ibcast");
            }
            results.push(out.into_iter().next().expect("rank 0"));
        }
        assert_eq!(
            results[0], results[1],
            "pipelined and eager candidates must agree"
        );
    }

    #[test]
    fn threaded_alignment_stage_matches_serial() {
        // The whole DetectOverlap + Alignment front end at `threads = 4`
        // must reproduce the serial run exactly: same dovetail triples,
        // same contained mask, same stats — and identical per-rank
        // profiled wire bytes, because workers never touch the comm
        // layer. This is the stage-level face of the determinism
        // contract (the SpGEMM and x-drop kernels are pinned
        // separately).
        let mut runs = Vec::new();
        for threads in [1usize, 4] {
            let (out, profile) = elba_comm::Cluster::run_profiled(4, move |comm| {
                let grid = ProcGrid::new(comm);
                let g = genome(900, 53);
                let reads = tiled_reads(&g, 200, 100);
                let n = reads.len();
                let store = ReadStore::from_replicated(&grid, &reads);
                let mut cfg = test_cfg();
                cfg.threads = threads;
                cfg.spgemm = cfg.spgemm.with_threads(threads);
                let kcfg = KmerConfig {
                    k: cfg.k,
                    reliable_min: 2,
                    reliable_max: 16,
                    threads,
                    ..KmerConfig::default()
                };
                let _g = grid.world().phase("front");
                let table = count_kmers(&grid, &store, &kcfg);
                let a_triples = build_a_triples(&grid, &store, &table, &kcfg);
                let a = DistMat::from_triples(
                    &grid,
                    n,
                    table.n_global as usize,
                    a_triples,
                    |acc, v: AEntry| {
                        if v.pos < acc.pos {
                            *acc = v;
                        }
                    },
                );
                let c = candidate_matrix(&grid, &a, &cfg);
                let (mut triples, contained, stats) = align_and_classify(&grid, &c, &store, &cfg);
                triples.sort_by_key(|&(i, j, _)| (i, j));
                (
                    triples,
                    contained.to_global(&grid),
                    (stats.candidate_pairs, stats.dovetails, stats.contained),
                )
            });
            let bytes: Vec<u64> = profile
                .rank_profiles()
                .iter()
                .map(|r| r.phase("front").map_or(0, |p| p.bytes_sent()))
                .collect();
            let wall = profile.max_wall("front");
            let par = profile.max_par_secs("front");
            if threads == 1 {
                assert_eq!(par, 0.0, "serial runs must not book par time");
            } else {
                assert!(par > 0.0, "threaded runs must book par time");
                assert!(par <= wall + 1e-9, "par time is a subset of wall time");
            }
            runs.push((out.into_iter().next().expect("rank 0"), bytes));
        }
        assert_eq!(
            runs[0].0, runs[1].0,
            "threads must not change the stage output"
        );
        assert_eq!(runs[0].1, runs[1].1, "threads must not change wire bytes");
    }

    #[test]
    fn align_pair_same_strand() {
        let g = genome(300, 7);
        let u = g.substring(0, 200);
        let v = g.substring(100, 300);
        let cfg = test_cfg();
        // seed inside the true overlap g[100..200): u_pos 120, v_pos 20
        let seeds = SharedSeeds::single(crate::semirings::Seed {
            pos_v: 120,
            pos_h: 20,
            same_strand: true,
        });
        let aln = align_pair(u.codes(), v.codes(), &seeds, &cfg).expect("alignment");
        assert!(!aln.rc);
        assert_eq!(aln.u_beg, 100);
        assert_eq!(aln.u_end, 199);
        assert_eq!(aln.w_beg, 0);
        assert_eq!(aln.w_end, 99);
    }

    #[test]
    fn align_pair_opposite_strand() {
        let g = genome(300, 8);
        let u = g.substring(0, 200);
        let v = g.substring(100, 300).reverse_complement();
        let cfg = test_cfg();
        // canonical k-mer at u pos 150 sits at w pos 50 (w = rc(v) =
        // g[100..300)); in v-forward coordinates that's 200-50-15 = 135.
        let seeds = SharedSeeds::single(crate::semirings::Seed {
            pos_v: 150,
            pos_h: 135,
            same_strand: false,
        });
        let aln = align_pair(u.codes(), v.codes(), &seeds, &cfg).expect("alignment");
        assert!(aln.rc);
        assert_eq!(aln.u_beg, 100);
        assert_eq!(aln.u_end, 199);
        assert_eq!(aln.w_beg, 0);
        assert_eq!(aln.w_end, 99);
    }

    #[test]
    fn contained_reads_masked_out() {
        let out = Cluster::run(4, |comm| {
            let grid = ProcGrid::new(comm);
            let g = genome(400, 11);
            // read 1 is contained inside read 0; read 2 dovetails read 0.
            let reads = vec![
                g.substring(0, 300),
                g.substring(50, 250),
                g.substring(200, 400),
            ];
            let store = ReadStore::from_replicated(&grid, &reads);
            let cfg = test_cfg();
            let kcfg = KmerConfig {
                k: cfg.k,
                reliable_min: 2,
                reliable_max: 16,
                ..KmerConfig::default()
            };
            let table = count_kmers(&grid, &store, &kcfg);
            let a_triples = build_a_triples(&grid, &store, &table, &kcfg);
            let a = DistMat::from_triples(
                &grid,
                3,
                table.n_global as usize,
                a_triples,
                |acc, v: AEntry| {
                    if v.pos < acc.pos {
                        *acc = v;
                    }
                },
            );
            let c = candidate_matrix(&grid, &a, &cfg);
            let (triples, contained, stats) = align_and_classify(&grid, &c, &store, &cfg);
            let r = overlap_graph(&grid, 3, triples, &contained);
            let degrees = r.row_degrees(&grid).to_global(&grid);
            (degrees, contained.to_global(&grid), stats.contained)
        });
        let (degrees, contained, n_contained) = &out[0];
        assert!(*n_contained >= 1);
        assert!(contained[1], "middle read is contained");
        assert_eq!(degrees[1], 0, "contained read must lose all edges");
        assert_eq!(degrees[0], 1);
        assert_eq!(degrees[2], 1);
    }
}
