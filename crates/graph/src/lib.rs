//! # elba-graph — overlap graph construction and layout for ELBA-RS
//!
//! The `O` and `L` of the OLC pipeline, as diBELLA 2D / ELBA formulate
//! them in sparse linear algebra:
//!
//! * [`semirings`] — the BELLA overlap-detection semiring (shared-k-mer
//!   counting with ≤2 retained seeds) and the direction-aware min-plus
//!   semiring driving transitive reduction,
//! * [`overlap_stage`] — `C = AAᵀ` over SUMMA, x-drop alignment of every
//!   candidate pair, classification into containment / internal /
//!   dovetail, and assembly of the symmetric overlap matrix `R` with
//!   contained reads pruned,
//! * [`reduction`] — bidirected transitive reduction of `R` into the
//!   string matrix `S` (plus a structural symmetrization pass).

pub mod overlap_stage;
pub mod reduction;
pub mod semirings;

pub use overlap_stage::{
    align_and_classify, align_pair, align_pair_with, candidate_matrix, overlap_graph, AlignScratch,
    AlignStats, OverlapConfig, SeedChaining,
};
pub use reduction::{symmetrize, transitive_reduction, transitive_reduction_with, ReductionStats};
pub use semirings::{dir_index, MinPlusDir, OverlapSemiring, ReductionSemiring, Seed, SharedSeeds};
