//! The overlap-detection semiring (BELLA) and the transitive-reduction
//! semiring (diBELLA 2D), instantiated over the generic
//! [`elba_sparse::Semiring`] machinery.

use elba_align::SgEdge;
use elba_seq::AEntry;
use elba_sparse::Semiring;

/// One shared-k-mer seed between a read pair: the k-mer's position in
/// both reads and whether the two occurrences sat on the same strand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Seed {
    pub pos_v: u32,
    pub pos_h: u32,
    pub same_strand: bool,
}

/// Value of the candidate overlap matrix `C = AAᵀ`: the number of shared
/// k-mers plus up to two retained seed positions (BELLA keeps at most two
/// seeds, preferring a well-separated pair, to drive x-drop extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedSeeds {
    pub count: u32,
    n: u8,
    seeds: [Seed; 2],
}

elba_comm::impl_comm_msg_pod!(SharedSeeds, Seed);
elba_mem::impl_deep_bytes_pod!(SharedSeeds, Seed);

impl SharedSeeds {
    pub fn single(seed: Seed) -> Self {
        SharedSeeds {
            count: 1,
            n: 1,
            seeds: [seed, seed],
        }
    }

    /// Retained seeds (1 or 2).
    pub fn seeds(&self) -> &[Seed] {
        &self.seeds[..self.n as usize]
    }

    /// Merge another accumulation into this one, keeping the pair of
    /// seeds with the largest vertical-position separation.
    pub fn merge(&mut self, other: SharedSeeds) {
        self.count += other.count;
        for &seed in other.seeds() {
            if self.n == 1 {
                if seed != self.seeds[0] {
                    self.seeds[1] = seed;
                    self.n = 2;
                }
            } else {
                // Keep {first, farthest-from-first}.
                let d_cur = self.seeds[0].pos_v.abs_diff(self.seeds[1].pos_v);
                let d_new = self.seeds[0].pos_v.abs_diff(seed.pos_v);
                if d_new > d_cur {
                    self.seeds[1] = seed;
                }
            }
        }
    }
}

/// `C = A ⊗ Aᵀ` semiring: multiplying the k-mer occurrence in read *v*
/// (row) with the occurrence in read *h* (column) yields a seed; addition
/// accumulates the shared-k-mer count and keeps ≤ 2 seeds.
#[derive(Debug, Clone, Copy, Default)]
pub struct OverlapSemiring;

impl Semiring for OverlapSemiring {
    type A = AEntry;
    type B = AEntry;
    type Out = SharedSeeds;

    #[inline]
    fn multiply(&self, a: &AEntry, b: &AEntry) -> Option<SharedSeeds> {
        Some(SharedSeeds::single(Seed {
            pos_v: a.pos,
            pos_h: b.pos,
            same_strand: a.fwd == b.fwd,
        }))
    }

    #[inline]
    fn add(&self, acc: &mut SharedSeeds, other: SharedSeeds) {
        acc.merge(other);
    }
}

/// Direction index of a directed string-graph edge: two bits encoding the
/// traversal orientation of source and destination (the bidirected
/// arrowheads).
#[inline]
pub fn dir_index(src_rev: bool, dst_rev: bool) -> usize {
    (src_rev as usize) << 1 | dst_rev as usize
}

/// Value of `N = S ⊗ S` during transitive reduction: the minimum two-hop
/// overhang sum for each of the four direction combinations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinPlusDir {
    pub per_dir: [u32; 4],
}

elba_comm::impl_comm_msg_pod!(MinPlusDir);
elba_mem::impl_deep_bytes_pod!(MinPlusDir);

impl MinPlusDir {
    pub const EMPTY: MinPlusDir = MinPlusDir {
        per_dir: [u32::MAX; 4],
    };
}

/// Transitive-reduction semiring (diBELLA 2D): composing `u→w` with
/// `w→v` is legal only when `w` is traversed in one consistent
/// orientation (`dst_rev(u→w) == src_rev(w→v)`); the product records the
/// min-plus overhang sum under the composite direction.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReductionSemiring;

impl Semiring for ReductionSemiring {
    type A = SgEdge;
    type B = SgEdge;
    type Out = MinPlusDir;

    #[inline]
    fn multiply(&self, e1: &SgEdge, e2: &SgEdge) -> Option<MinPlusDir> {
        if e1.dst_rev != e2.src_rev {
            return None;
        }
        let mut out = MinPlusDir::EMPTY;
        out.per_dir[dir_index(e1.src_rev, e2.dst_rev)] = e1.suffix.saturating_add(e2.suffix);
        Some(out)
    }

    #[inline]
    fn add(&self, acc: &mut MinPlusDir, other: MinPlusDir) {
        for (a, b) in acc.per_dir.iter_mut().zip(other.per_dir) {
            *a = (*a).min(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seed(pos_v: u32, pos_h: u32) -> Seed {
        Seed {
            pos_v,
            pos_h,
            same_strand: true,
        }
    }

    #[test]
    fn overlap_semiring_counts_and_keeps_two_seeds() {
        let s = OverlapSemiring;
        let a = AEntry { pos: 10, fwd: true };
        let b = AEntry { pos: 20, fwd: true };
        let mut acc = s.multiply(&a, &b).expect("always produces a seed");
        for pos in [30u32, 50, 40] {
            let x = s
                .multiply(
                    &AEntry { pos, fwd: true },
                    &AEntry {
                        pos: pos + 5,
                        fwd: false,
                    },
                )
                .expect("seed");
            s.add(&mut acc, x);
        }
        assert_eq!(acc.count, 4);
        assert_eq!(acc.seeds().len(), 2);
        // keeps the farthest pair: positions 10 and 50
        assert_eq!(acc.seeds()[0].pos_v, 10);
        assert_eq!(acc.seeds()[1].pos_v, 50);
    }

    #[test]
    fn strand_agreement_recorded() {
        let s = OverlapSemiring;
        let out = s
            .multiply(
                &AEntry { pos: 1, fwd: true },
                &AEntry { pos: 2, fwd: false },
            )
            .expect("seed");
        assert!(!out.seeds()[0].same_strand);
    }

    #[test]
    fn reduction_semiring_requires_consistent_middle() {
        let s = ReductionSemiring;
        let e1 = SgEdge {
            pre: 0,
            post: 0,
            src_rev: false,
            dst_rev: false,
            suffix: 10,
        };
        let e2 = SgEdge {
            pre: 0,
            post: 0,
            src_rev: false,
            dst_rev: true,
            suffix: 20,
        };
        let product = s.multiply(&e1, &e2).expect("compatible");
        assert_eq!(product.per_dir[dir_index(false, true)], 30);
        // incompatible middle orientation annihilates
        let e3 = SgEdge {
            pre: 0,
            post: 0,
            src_rev: true,
            dst_rev: false,
            suffix: 20,
        };
        assert_eq!(s.multiply(&e1, &e3), None);
    }

    #[test]
    fn reduction_add_takes_min_per_direction() {
        let s = ReductionSemiring;
        let mut acc = MinPlusDir::EMPTY;
        let mut a = MinPlusDir::EMPTY;
        a.per_dir[0] = 100;
        let mut b = MinPlusDir::EMPTY;
        b.per_dir[0] = 50;
        b.per_dir[3] = 70;
        s.add(&mut acc, a);
        s.add(&mut acc, b);
        assert_eq!(acc.per_dir[0], 50);
        assert_eq!(acc.per_dir[3], 70);
        assert_eq!(acc.per_dir[1], u32::MAX);
    }

    #[test]
    fn merge_dedups_identical_seed() {
        let mut acc = SharedSeeds::single(seed(5, 6));
        acc.merge(SharedSeeds::single(seed(5, 6)));
        assert_eq!(acc.count, 2);
        assert_eq!(acc.seeds().len(), 1);
    }
}
