//! Bidirected transitive reduction (`TrReduction`, Algorithm 1 line 10) —
//! the diBELLA 2D layout stage that turns the overlap matrix `R` into the
//! string matrix `S`.
//!
//! Each sweep computes `N = R ⊗ R` under the min-plus, direction-aware
//! [`crate::semirings::ReductionSemiring`]: `N(u,v)` holds, per direction
//! pair, the smallest two-hop overhang sum `u→w→v` with a consistently
//! oriented middle read `w`. An edge `e = (u,v)` is *transitive* — i.e.
//! carries no information a parallel path doesn't — when
//! `N(u,v)[dir(e)] ≤ suffix(e) + fuzz`. Marked edges are removed
//! simultaneously and the sweep repeats until a global fixed point.

use elba_align::SgEdge;
use elba_comm::ProcGrid;
use elba_sparse::{DistMat, SpGemmOptions};

use crate::semirings::{dir_index, ReductionSemiring};

/// Outcome of the reduction.
#[derive(Debug, Clone, Copy)]
pub struct ReductionStats {
    pub iterations: usize,
    pub removed: u64,
    pub nnz_before: u64,
    pub nnz_after: u64,
}

/// Run transitive reduction to a fixed point (or `max_iters`). Collective.
/// Each sweep's `N = R ⊗ R` runs under the default (pipelined) SpGEMM
/// schedule; use [`transitive_reduction_with`] to pick one explicitly.
pub fn transitive_reduction(
    grid: &ProcGrid,
    s: DistMat<SgEdge>,
    fuzz: u32,
    max_iters: usize,
) -> (DistMat<SgEdge>, ReductionStats) {
    transitive_reduction_with(grid, s, fuzz, max_iters, &SpGemmOptions::default())
}

/// [`transitive_reduction`] under an explicit SpGEMM schedule (the sweep
/// is SpGEMM-dominated, so the schedule choice is what bounds its memory
/// and exposes its overlap). Collective.
pub fn transitive_reduction_with(
    grid: &ProcGrid,
    mut s: DistMat<SgEdge>,
    fuzz: u32,
    max_iters: usize,
    opts: &SpGemmOptions,
) -> (DistMat<SgEdge>, ReductionStats) {
    let nnz_before = s.nnz_global(grid);
    let mut removed_total = 0u64;
    let mut iterations = 0usize;
    while iterations < max_iters {
        iterations += 1;
        let n = s.spgemm_with(grid, &s, &ReductionSemiring, opts);
        let before = s.nnz_global(grid);
        s = s.zip_prune(grid, &n, |_, _, edge, two_hop| match two_hop {
            Some(paths) => {
                let best = paths.per_dir[dir_index(edge.src_rev, edge.dst_rev)];
                // Keep the edge unless a parallel two-hop path subsumes it.
                best > edge.suffix.saturating_add(fuzz)
            }
            None => true,
        });
        let after = s.nnz_global(grid);
        removed_total += before - after;
        if before == after {
            break;
        }
    }
    let nnz_after = s.nnz_global(grid);
    (
        s,
        ReductionStats {
            iterations,
            removed: removed_total,
            nnz_before,
            nnz_after,
        },
    )
}

/// Drop any directed edge whose mirror is absent, restoring exact
/// structural symmetry after fuzz-boundary effects. Collective.
pub fn symmetrize(grid: &ProcGrid, s: DistMat<SgEdge>) -> DistMat<SgEdge> {
    let t = s.transpose(grid);
    s.zip_prune(grid, &t, |_, _, _, mirror| mirror.is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use elba_comm::{Backend, Runner};

    /// Build the symmetric edge pair for two reads laid consecutively on a
    /// genome: read i covers [i*stride, i*stride + len).
    fn chain_edges(n: usize, len: u32, stride: u32) -> Vec<(u64, u64, SgEdge)> {
        let mut triples = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let gap = (j - i) as u32 * stride;
                if gap >= len {
                    continue; // no overlap
                }
                // same-strand dovetail, read i left of read j
                triples.push((
                    i as u64,
                    j as u64,
                    SgEdge {
                        pre: gap - 1,
                        post: 0,
                        src_rev: false,
                        dst_rev: false,
                        suffix: gap,
                    },
                ));
                triples.push((
                    j as u64,
                    i as u64,
                    SgEdge {
                        pre: len - gap,
                        post: len - 1,
                        src_rev: true,
                        dst_rev: true,
                        suffix: gap,
                    },
                ));
            }
        }
        triples
    }

    #[test]
    fn chain_reduces_to_adjacent_edges() {
        for p in [1usize, 4] {
            let out = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
                let grid = ProcGrid::new(comm);
                // 6 reads of length 100 at stride 30: read i overlaps
                // i+1, i+2, i+3 — reduction must keep only i↔i+1.
                let triples = if grid.world().rank() == 0 {
                    chain_edges(6, 100, 30)
                } else {
                    Vec::new()
                };
                let r = DistMat::from_triples(&grid, 6, 6, triples, |_, _| unreachable!());
                let (s, stats) = transitive_reduction(&grid, r, 5, 10);
                let mut kept: Vec<(u64, u64)> = s
                    .gather_triples(&grid)
                    .into_iter()
                    .map(|(a, b, _)| (a, b))
                    .collect();
                kept.sort_unstable();
                (kept, stats.removed)
            });
            let (kept, removed) = &out[0];
            let want: Vec<(u64, u64)> = (0..5u64)
                .flat_map(|i| [(i, i + 1), (i + 1, i)])
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            assert_eq!(kept, &want, "p={p}");
            assert!(*removed > 0);
        }
    }

    #[test]
    fn reduction_respects_direction_compatibility() {
        // u→w→v exists but w's orientation is inconsistent between the two
        // hops, so the direct edge u→v must survive.
        let out = Runner::new(Backend::InProcess).ranks(1).run(|comm| {
            let grid = ProcGrid::new(comm);
            let triples = vec![
                (
                    0u64,
                    1u64,
                    SgEdge {
                        pre: 9,
                        post: 0,
                        src_rev: false,
                        dst_rev: false,
                        suffix: 10,
                    },
                ),
                // w (=1) leaves reversed — incompatible with arriving forward
                (
                    1u64,
                    2u64,
                    SgEdge {
                        pre: 9,
                        post: 0,
                        src_rev: true,
                        dst_rev: false,
                        suffix: 10,
                    },
                ),
                (
                    0u64,
                    2u64,
                    SgEdge {
                        pre: 19,
                        post: 0,
                        src_rev: false,
                        dst_rev: false,
                        suffix: 20,
                    },
                ),
            ];
            let r = DistMat::from_triples(&grid, 3, 3, triples, |_, _| unreachable!());
            let (s, _) = transitive_reduction(&grid, r, 2, 10);
            s.nnz_global(&grid)
        });
        assert_eq!(out[0], 3, "no edge may be removed");
    }

    #[test]
    fn compatible_two_hop_removes_direct_edge() {
        let out = Runner::new(Backend::InProcess).ranks(1).run(|comm| {
            let grid = ProcGrid::new(comm);
            let triples = vec![
                (
                    0u64,
                    1u64,
                    SgEdge {
                        pre: 9,
                        post: 0,
                        src_rev: false,
                        dst_rev: false,
                        suffix: 10,
                    },
                ),
                (
                    1u64,
                    2u64,
                    SgEdge {
                        pre: 9,
                        post: 0,
                        src_rev: false,
                        dst_rev: false,
                        suffix: 10,
                    },
                ),
                (
                    0u64,
                    2u64,
                    SgEdge {
                        pre: 19,
                        post: 0,
                        src_rev: false,
                        dst_rev: false,
                        suffix: 20,
                    },
                ),
            ];
            let r = DistMat::from_triples(&grid, 3, 3, triples, |_, _| unreachable!());
            let (s, stats) = transitive_reduction(&grid, r, 2, 10);
            let mut kept: Vec<(u64, u64)> = s
                .gather_triples(&grid)
                .into_iter()
                .map(|(a, b, _)| (a, b))
                .collect();
            kept.sort_unstable();
            (kept, stats.iterations)
        });
        assert_eq!(out[0].0, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn fuzz_tolerates_inexact_suffix_sums() {
        let out = Runner::new(Backend::InProcess).ranks(1).run(|comm| {
            let grid = ProcGrid::new(comm);
            // two-hop sum 23 vs direct suffix 20: transitive only if fuzz >= 3
            let triples = vec![
                (
                    0u64,
                    1u64,
                    SgEdge {
                        pre: 9,
                        post: 0,
                        src_rev: false,
                        dst_rev: false,
                        suffix: 11,
                    },
                ),
                (
                    1u64,
                    2u64,
                    SgEdge {
                        pre: 9,
                        post: 0,
                        src_rev: false,
                        dst_rev: false,
                        suffix: 12,
                    },
                ),
                (
                    0u64,
                    2u64,
                    SgEdge {
                        pre: 19,
                        post: 0,
                        src_rev: false,
                        dst_rev: false,
                        suffix: 20,
                    },
                ),
            ];
            let strict = {
                let r = DistMat::from_triples(&grid, 3, 3, triples.clone(), |_, _| unreachable!());
                transitive_reduction(&grid, r, 0, 10).0.nnz_global(&grid)
            };
            let fuzzy = {
                let r = DistMat::from_triples(&grid, 3, 3, triples, |_, _| unreachable!());
                transitive_reduction(&grid, r, 5, 10).0.nnz_global(&grid)
            };
            (strict, fuzzy)
        });
        assert_eq!(out[0].0, 3, "strict keeps the direct edge");
        assert_eq!(out[0].1, 2, "fuzzy removes it");
    }

    #[test]
    fn symmetrize_drops_unpaired_edges() {
        let out = Runner::new(Backend::InProcess).ranks(4).run(|comm| {
            let grid = ProcGrid::new(comm);
            let e = SgEdge {
                pre: 0,
                post: 0,
                src_rev: false,
                dst_rev: false,
                suffix: 1,
            };
            let triples = if grid.world().rank() == 0 {
                vec![(0u64, 1u64, e), (1u64, 0u64, e), (2u64, 3u64, e)]
            } else {
                Vec::new()
            };
            let s = DistMat::from_triples(&grid, 4, 4, triples, |_, _| unreachable!());
            let sym = symmetrize(&grid, s);
            let mut kept: Vec<(u64, u64)> = sym
                .gather_triples(&grid)
                .into_iter()
                .map(|(a, b, _)| (a, b))
                .collect();
            kept.sort_unstable();
            kept
        });
        assert_eq!(out[0], vec![(0, 1), (1, 0)]);
    }
}
