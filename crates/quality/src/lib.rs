//! # elba-quality — QUAST-style assembly evaluation for ELBA-RS
//!
//! Reproduces the metrics of the paper's Table 4: **completeness** (the
//! fraction of the reference covered by at least one aligned contig
//! block), **longest contig**, **number of contigs**, and **misassembled
//! contigs** (contigs whose aligned blocks come from discordant reference
//! regions or orientations), plus NG50.
//!
//! Because every dataset in this reproduction is simulated, the reference
//! is known exactly; contigs are mapped back to it with unique-k-mer
//! anchoring and collinear chaining (the same alignment-free strategy
//! QUAST's minimap stage approximates for near-exact contigs).

use std::collections::HashMap;

use elba_seq::kmer::canonical_kmers;
use elba_seq::Seq;

/// Evaluation parameters.
#[derive(Debug, Clone)]
pub struct QualityConfig {
    /// Anchor k-mer length (unique within the reference).
    pub k: usize,
    /// Two adjacent anchor blocks more than this far apart on the
    /// reference (or order/orientation-discordant) flag a misassembly.
    pub misassembly_gap: usize,
    /// Anchors tolerate this much diagonal drift within one block
    /// (absorbs indel noise in uncorrected contigs).
    pub diagonal_tolerance: i64,
    /// Minimum anchors for a block to count as aligned.
    pub min_block_anchors: usize,
}

impl Default for QualityConfig {
    fn default() -> Self {
        QualityConfig {
            k: 21,
            misassembly_gap: 1_000,
            diagonal_tolerance: 60,
            min_block_anchors: 3,
        }
    }
}

/// The Table 4 row for one assembly.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityReport {
    /// % of reference bases covered by ≥ 1 aligned contig block.
    pub completeness: f64,
    pub longest_contig: usize,
    pub n_contigs: usize,
    pub misassembled_contigs: usize,
    /// Total assembled bases.
    pub total_len: usize,
    /// NG50: largest L such that contigs ≥ L cover half the *reference*.
    pub ng50: usize,
    /// Contigs with no aligned block at all.
    pub unaligned_contigs: usize,
}

/// One collinear run of anchors.
#[derive(Debug, Clone, Copy)]
struct Block {
    ref_start: usize,
    ref_end: usize,
    anchors: usize,
    forward: bool,
}

/// Index of k-mers occurring exactly once in the reference.
pub struct ReferenceIndex {
    k: usize,
    ref_len: usize,
    /// canonical k-mer → (position, canonical-matched-forward-strand)
    unique: HashMap<u64, (u32, bool)>,
}

impl ReferenceIndex {
    pub fn build(reference: &Seq, k: usize) -> Self {
        let mut counts: HashMap<u64, u32> = HashMap::new();
        for hit in canonical_kmers(reference, k) {
            *counts.entry(hit.kmer).or_insert(0) += 1;
        }
        let mut unique = HashMap::new();
        for hit in canonical_kmers(reference, k) {
            if counts.get(&hit.kmer) == Some(&1) {
                unique.insert(hit.kmer, (hit.pos, hit.fwd));
            }
        }
        ReferenceIndex {
            k,
            ref_len: reference.len(),
            unique,
        }
    }

    /// Fraction of reference k-mers that are unique (diagnostic).
    pub fn unique_fraction(&self) -> f64 {
        if self.ref_len < self.k {
            return 0.0;
        }
        self.unique.len() as f64 / (self.ref_len - self.k + 1) as f64
    }
}

/// Chain a contig's unique-k-mer anchors into collinear blocks.
fn blocks_of(contig: &Seq, index: &ReferenceIndex, cfg: &QualityConfig) -> Vec<Block> {
    // anchors: (contig_pos, ref_pos, same_strand)
    let mut anchors: Vec<(i64, i64, bool)> = Vec::new();
    for hit in canonical_kmers(contig, index.k) {
        if let Some(&(ref_pos, ref_fwd)) = index.unique.get(&hit.kmer) {
            anchors.push((hit.pos as i64, ref_pos as i64, hit.fwd == ref_fwd));
        }
    }
    // contig order is already ascending in contig position
    let mut blocks: Vec<Block> = Vec::new();
    let mut current: Option<(Block, i64)> = None; // block + its diagonal
    for (cpos, rpos, fwd) in anchors {
        let diag = if fwd { rpos - cpos } else { rpos + cpos };
        match current.as_mut() {
            Some((block, bdiag))
                if block.forward == fwd && (diag - *bdiag).abs() <= cfg.diagonal_tolerance =>
            {
                block.ref_start = block.ref_start.min(rpos as usize);
                block.ref_end = block.ref_end.max(rpos as usize + index.k);
                block.anchors += 1;
                // track drift slowly so long indel-y blocks stay chained
                *bdiag = (*bdiag * 3 + diag) / 4;
            }
            _ => {
                if let Some((block, _)) = current.take() {
                    if block.anchors >= cfg.min_block_anchors {
                        blocks.push(block);
                    }
                }
                current = Some((
                    Block {
                        ref_start: rpos as usize,
                        ref_end: rpos as usize + index.k,
                        anchors: 1,
                        forward: fwd,
                    },
                    diag,
                ));
            }
        }
    }
    if let Some((block, _)) = current {
        if block.anchors >= cfg.min_block_anchors {
            blocks.push(block);
        }
    }
    blocks
}

/// Whether a contig's block list constitutes a misassembly.
fn is_misassembled(blocks: &[Block], cfg: &QualityConfig) -> bool {
    blocks.windows(2).any(|w| {
        let (a, b) = (&w[0], &w[1]);
        let discordant_strand = a.forward != b.forward;
        let gap =
            (b.ref_start.saturating_sub(a.ref_end)).max(a.ref_start.saturating_sub(b.ref_end));
        discordant_strand || gap > cfg.misassembly_gap
    })
}

/// Evaluate an assembly against its reference.
pub fn evaluate(reference: &Seq, contigs: &[Seq], cfg: &QualityConfig) -> QualityReport {
    let index = ReferenceIndex::build(reference, cfg.k);
    let mut covered = vec![false; reference.len()];
    let mut misassembled = 0usize;
    let mut unaligned = 0usize;
    for contig in contigs {
        let blocks = blocks_of(contig, &index, cfg);
        if blocks.is_empty() {
            unaligned += 1;
            continue;
        }
        if is_misassembled(&blocks, cfg) {
            misassembled += 1;
        }
        for block in &blocks {
            for flag in covered
                .iter_mut()
                .take(block.ref_end.min(reference.len()))
                .skip(block.ref_start)
            {
                *flag = true;
            }
        }
    }
    let covered_bases = covered.iter().filter(|&&c| c).count();
    let mut lengths: Vec<usize> = contigs.iter().map(Seq::len).collect();
    lengths.sort_unstable_by(|a, b| b.cmp(a));
    let half = reference.len() / 2;
    let mut acc = 0usize;
    let mut ng50 = 0usize;
    for &len in &lengths {
        acc += len;
        if acc >= half {
            ng50 = len;
            break;
        }
    }
    QualityReport {
        completeness: 100.0 * covered_bases as f64 / reference.len().max(1) as f64,
        longest_contig: lengths.first().copied().unwrap_or(0),
        n_contigs: contigs.len(),
        misassembled_contigs: misassembled,
        total_len: lengths.iter().sum(),
        ng50,
        unaligned_contigs: unaligned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn genome(len: usize, seed: u64) -> Seq {
        let mut rng = StdRng::seed_from_u64(seed);
        Seq::from_codes((0..len).map(|_| rng.gen_range(0..4u8)).collect())
    }

    #[test]
    fn perfect_single_contig_is_complete() {
        let g = genome(10_000, 1);
        let report = evaluate(&g, std::slice::from_ref(&g), &QualityConfig::default());
        assert!(report.completeness > 99.0, "{}", report.completeness);
        assert_eq!(report.misassembled_contigs, 0);
        assert_eq!(report.longest_contig, 10_000);
        assert_eq!(report.ng50, 10_000);
    }

    #[test]
    fn reverse_complement_contig_also_maps() {
        let g = genome(8_000, 2);
        let report = evaluate(&g, &[g.reverse_complement()], &QualityConfig::default());
        assert!(report.completeness > 99.0);
        assert_eq!(report.misassembled_contigs, 0);
    }

    #[test]
    fn half_genome_gives_half_completeness() {
        let g = genome(10_000, 3);
        let half = g.substring(0, 5_000);
        let report = evaluate(&g, &[half], &QualityConfig::default());
        assert!(
            (report.completeness - 50.0).abs() < 2.0,
            "{}",
            report.completeness
        );
    }

    #[test]
    fn chimeric_contig_flags_misassembly() {
        let g = genome(20_000, 4);
        // join two distant regions
        let mut chimera = g.substring(0, 4_000);
        chimera.extend_from(&g.substring(12_000, 16_000));
        let report = evaluate(&g, &[chimera], &QualityConfig::default());
        assert_eq!(report.misassembled_contigs, 1);
    }

    #[test]
    fn strand_flip_flags_misassembly() {
        let g = genome(20_000, 5);
        let mut flipped = g.substring(0, 4_000);
        flipped.extend_from(&g.substring(4_000, 8_000).reverse_complement());
        let report = evaluate(&g, &[flipped], &QualityConfig::default());
        assert_eq!(report.misassembled_contigs, 1);
    }

    #[test]
    fn adjacent_regions_are_not_misassemblies() {
        let g = genome(20_000, 6);
        // contig with a 300-base unaligned insert (below the 1 kb gap)
        let mut contig = g.substring(0, 4_000);
        contig.extend_from(&genome(300, 99));
        contig.extend_from(&g.substring(4_300, 8_000));
        let report = evaluate(&g, &[contig], &QualityConfig::default());
        assert_eq!(report.misassembled_contigs, 0);
    }

    #[test]
    fn noisy_contig_still_maps() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = genome(10_000, 7);
        // 1% substitutions
        let mut codes = g.codes().to_vec();
        for _ in 0..100 {
            let at = rng.gen_range(0..codes.len());
            codes[at] = (codes[at] + 1) % 4;
        }
        let noisy = Seq::from_codes(codes);
        let report = evaluate(&g, &[noisy], &QualityConfig::default());
        assert!(report.completeness > 90.0, "{}", report.completeness);
        assert_eq!(report.misassembled_contigs, 0);
    }

    #[test]
    fn random_contig_is_unaligned() {
        let g = genome(10_000, 8);
        let junk = genome(5_000, 999);
        let report = evaluate(&g, &[junk], &QualityConfig::default());
        assert_eq!(report.unaligned_contigs, 1);
        assert!(report.completeness < 1.0);
    }

    #[test]
    fn ng50_uses_reference_length() {
        let g = genome(10_000, 9);
        // three contigs: 4k, 2k, 1k; half the genome = 5000; 4k+2k ≥ 5000
        let contigs = vec![
            g.substring(0, 4_000),
            g.substring(4_000, 6_000),
            g.substring(6_000, 7_000),
        ];
        let report = evaluate(&g, &contigs, &QualityConfig::default());
        assert_eq!(report.ng50, 2_000);
        assert_eq!(report.n_contigs, 3);
    }

    #[test]
    fn empty_assembly() {
        let g = genome(1_000, 10);
        let report = evaluate(&g, &[], &QualityConfig::default());
        assert_eq!(report.completeness, 0.0);
        assert_eq!(report.longest_contig, 0);
        assert_eq!(report.ng50, 0);
    }

    #[test]
    fn unique_fraction_reasonable_for_random_genome() {
        let g = genome(50_000, 11);
        let index = ReferenceIndex::build(&g, 21);
        assert!(index.unique_fraction() > 0.95);
    }
}
