//! # elba-baseline — shared-memory comparator assemblers
//!
//! The paper's Table 3/4 compare ELBA against shared-memory assemblers
//! (Hifiasm, HiCanu, Miniasm, Canu). Those codebases are large and
//! closed to this reproduction, so this crate provides two from-scratch
//! serial assemblers that preserve the *algorithmic shape* of the
//! comparison:
//!
//! * [`assemble_bog`] — a **best-overlap-graph** greedy assembler in the
//!   Canu/HiCanu family: indexes every reliable k-mer, aligns every
//!   candidate pair, keeps only each read end's best (longest) overlap,
//!   requires mutual agreement, and walks the resulting paths. Thorough
//!   and slow — the HiCanu stand-in.
//! * [`assemble_minimizer`] — a **minimizer-sketch** assembler in the
//!   minimap/miniasm/hifiasm family: samples window minimizers (far
//!   fewer seeds), aligns the sparser candidate set, applies a serial
//!   transitive reduction and walks non-branching paths. Fast — the
//!   Hifiasm/Miniasm stand-in.
//!
//! Both reuse the same x-drop kernel and `pre`/`post` walk machinery as
//! the distributed pipeline, so runtime differences reflect algorithm
//! structure, not implementation maturity.

use std::collections::HashMap;

use elba_align::{
    classify, extend_seed_with, OverlapAln, OverlapClass, Scoring, SgEdge, XdropWorkspace,
};
use elba_core::{local_assembly, AssemblyConfig, Contig, LocalGraph};
use elba_seq::kmer::canonical_kmers;
use elba_seq::{ReadStore, Seq};
use elba_sparse::Dcsc;

/// Parameters shared by both baselines.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    pub k: usize,
    pub xdrop: i32,
    pub scoring: Scoring,
    pub min_overlap: usize,
    /// Minimum alignment score / span ratio (spurious-seed filter).
    pub min_score_ratio: f64,
    pub fuzz: usize,
    /// Reliable k-mer multiplicity band (as in the pipeline).
    pub reliable_min: u32,
    pub reliable_max: u32,
    /// Minimizer window for [`assemble_minimizer`].
    pub window: usize,
    /// Transitive-reduction overhang fuzz.
    pub tr_fuzz: u32,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            k: 17,
            xdrop: 15,
            scoring: Scoring::default(),
            min_overlap: 100,
            min_score_ratio: 0.55,
            fuzz: 60,
            reliable_min: 2,
            reliable_max: 200,
            window: 9,
            tr_fuzz: 150,
        }
    }
}

/// Outcome counters (for the Table 3 harness).
#[derive(Debug, Clone, Copy, Default)]
pub struct BaselineStats {
    pub candidate_pairs: usize,
    pub aligned_pairs: usize,
    pub dovetail_edges: usize,
    pub contained_reads: usize,
    pub contigs: usize,
}

/// One seed shared by a read pair.
#[derive(Debug, Clone, Copy)]
struct PairSeed {
    u: u32,
    v: u32,
    pos_u: u32,
    pos_v: u32,
    same_strand: bool,
}

/// Candidate pairs via a full reliable-k-mer index (BOG flavour).
fn candidates_all_kmers(reads: &[Seq], cfg: &BaselineConfig) -> Vec<PairSeed> {
    // k-mer -> occurrences (read, pos, fwd)
    let mut index: HashMap<u64, Vec<(u32, u32, bool)>> = HashMap::new();
    for (rid, read) in reads.iter().enumerate() {
        let mut seen: HashMap<u64, ()> = HashMap::new();
        for hit in canonical_kmers(read, cfg.k) {
            if seen.insert(hit.kmer, ()).is_none() {
                index
                    .entry(hit.kmer)
                    .or_default()
                    .push((rid as u32, hit.pos, hit.fwd));
            }
        }
    }
    collect_pair_seeds(index, cfg)
}

/// Candidate pairs via window minimizers (miniasm flavour).
fn candidates_minimizer(reads: &[Seq], cfg: &BaselineConfig) -> Vec<PairSeed> {
    let mut index: HashMap<u64, Vec<(u32, u32, bool)>> = HashMap::new();
    for (rid, read) in reads.iter().enumerate() {
        let hits = canonical_kmers(read, cfg.k);
        if hits.is_empty() {
            continue;
        }
        let mut last_pick: Option<u32> = None;
        for window in hits.windows(cfg.window.max(1)) {
            let pick = window
                .iter()
                .min_by_key(|h| h.kmer.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .expect("window non-empty");
            if last_pick != Some(pick.pos) {
                last_pick = Some(pick.pos);
                index
                    .entry(pick.kmer)
                    .or_default()
                    .push((rid as u32, pick.pos, pick.fwd));
            }
        }
    }
    collect_pair_seeds(index, cfg)
}

/// Expand the inverted index into per-pair seeds (one seed per pair: the
/// first shared k-mer; filtering repeat k-mers above the reliable band).
fn collect_pair_seeds(
    index: HashMap<u64, Vec<(u32, u32, bool)>>,
    cfg: &BaselineConfig,
) -> Vec<PairSeed> {
    let mut seeds: HashMap<(u32, u32), PairSeed> = HashMap::new();
    for occurrences in index.into_values() {
        let n = occurrences.len() as u32;
        if n < cfg.reliable_min || n > cfg.reliable_max {
            continue;
        }
        for (i, &(ru, pu, fu)) in occurrences.iter().enumerate() {
            for &(rv, pv, fv) in &occurrences[i + 1..] {
                if ru == rv {
                    continue;
                }
                let (u, v, pos_u, pos_v, fu, fv) = if ru < rv {
                    (ru, rv, pu, pv, fu, fv)
                } else {
                    (rv, ru, pv, pu, fv, fu)
                };
                seeds.entry((u, v)).or_insert(PairSeed {
                    u,
                    v,
                    pos_u,
                    pos_v,
                    same_strand: fu == fv,
                });
            }
        }
    }
    let mut out: Vec<PairSeed> = seeds.into_values().collect();
    out.sort_by_key(|s| (s.u, s.v));
    out
}

/// Align candidates, classify, and return the directed dovetail edges
/// plus the contained-read mask.
fn build_edges(
    reads: &[Seq],
    seeds: &[PairSeed],
    cfg: &BaselineConfig,
    stats: &mut BaselineStats,
) -> (Vec<(u32, u32, SgEdge)>, Vec<bool>) {
    let mut contained = vec![false; reads.len()];
    let mut edges = Vec::new();
    stats.candidate_pairs = seeds.len();
    let mut ws = XdropWorkspace::default();
    for seed in seeds {
        let u_codes = reads[seed.u as usize].codes();
        let v = &reads[seed.v as usize];
        let aln = if seed.same_strand {
            if seed.pos_u as usize + cfg.k > u_codes.len() || seed.pos_v as usize + cfg.k > v.len()
            {
                continue;
            }
            let aln = extend_seed_with(
                &mut ws,
                u_codes,
                v.codes(),
                seed.pos_u as usize,
                seed.pos_v as usize,
                cfg.k,
                cfg.xdrop,
                cfg.scoring,
            );
            OverlapAln::from_seed(aln, false, u_codes.len(), v.len())
        } else {
            let w = v.reverse_complement();
            let w_pos = v.len() - seed.pos_v as usize - cfg.k;
            if seed.pos_u as usize + cfg.k > u_codes.len() || w_pos + cfg.k > w.len() {
                continue;
            }
            let aln = extend_seed_with(
                &mut ws,
                u_codes,
                w.codes(),
                seed.pos_u as usize,
                w_pos,
                cfg.k,
                cfg.xdrop,
                cfg.scoring,
            );
            OverlapAln::from_seed(aln, true, u_codes.len(), v.len())
        };
        stats.aligned_pairs += 1;
        match classify(&aln, cfg.fuzz) {
            OverlapClass::ContainedU => contained[seed.u as usize] = true,
            OverlapClass::ContainedV => contained[seed.v as usize] = true,
            OverlapClass::Internal => {}
            OverlapClass::Dovetail { fwd, bwd } => {
                let score_ok = aln.score as f64 >= cfg.min_score_ratio * aln.span() as f64;
                if aln.span() >= cfg.min_overlap && score_ok {
                    edges.push((seed.u, seed.v, fwd));
                    edges.push((seed.v, seed.u, bwd));
                }
            }
        }
    }
    stats.contained_reads = contained.iter().filter(|&&c| c).count();
    edges.retain(|&(u, v, _)| !contained[u as usize] && !contained[v as usize]);
    (edges, contained)
}

/// Best-overlap-graph selection: per (read, end) keep the edge with the
/// longest overlap (largest aligned span ≈ smallest overhang), then keep
/// only mutual pairs (Canu's Bogart strategy).
fn best_overlap_filter(n: usize, edges: Vec<(u32, u32, SgEdge)>) -> Vec<(u32, u32, SgEdge)> {
    // read end key: (read, leaves-from-suffix?) — src_rev=false leaves the
    // read's right end, src_rev=true its left end.
    let mut best: HashMap<(u32, bool), (u32, u32)> = HashMap::new(); // -> (partner, suffix)
    for &(u, v, e) in &edges {
        let key = (u, e.src_rev);
        match best.get(&key) {
            Some(&(_, s)) if s <= e.suffix => {}
            _ => {
                best.insert(key, (v, e.suffix));
            }
        }
    }
    let is_best =
        |u: u32, v: u32, e: &SgEdge| best.get(&(u, e.src_rev)).map(|&(p, _)| p) == Some(v);
    let _ = n;
    edges
        .into_iter()
        .filter(|&(u, v, ref e)| {
            // mutual: the reverse edge must also be v's best on its end
            is_best(u, v, e) && best.iter().any(|(&(r, _), &(p, _))| r == v && p == u)
        })
        .collect()
}

/// Serial transitive reduction over directed SgEdge lists (miniasm-style).
fn serial_transitive_reduction(
    n: usize,
    mut edges: Vec<(u32, u32, SgEdge)>,
    fuzz: u32,
) -> Vec<(u32, u32, SgEdge)> {
    loop {
        let mut adj: Vec<Vec<(u32, SgEdge)>> = vec![Vec::new(); n];
        for &(u, v, e) in &edges {
            adj[u as usize].push((v, e));
        }
        let before = edges.len();
        edges.retain(|&(u, v, e)| {
            // transitive iff ∃ w: (u,w) + (w,v) direction-compatible with
            // overhang sum ≤ suffix + fuzz
            !adj[u as usize].iter().any(|&(w, e1)| {
                w != v
                    && adj[w as usize].iter().any(|&(x, e2)| {
                        x == v
                            && e1.dst_rev == e2.src_rev
                            && e1.src_rev == e.src_rev
                            && e2.dst_rev == e.dst_rev
                            && e1.suffix.saturating_add(e2.suffix) <= e.suffix.saturating_add(fuzz)
                    })
            })
        });
        if edges.len() == before {
            return edges;
        }
    }
}

/// Mask branch vertices (degree ≥ 3) and assemble the linear chains by
/// reusing the pipeline's walk.
fn assemble_from_edges(
    reads: &[Seq],
    edges: Vec<(u32, u32, SgEdge)>,
    stats: &mut BaselineStats,
) -> Vec<Contig> {
    let n = reads.len();
    let mut degree = vec![0usize; n];
    for &(u, _, _) in &edges {
        degree[u as usize] += 1;
    }
    let kept: Vec<(u32, u32, SgEdge)> = edges
        .into_iter()
        .filter(|&(u, v, _)| degree[u as usize] <= 2 && degree[v as usize] <= 2)
        .collect();
    stats.dovetail_edges = kept.len();
    let dcsc = Dcsc::from_triples(n, n, kept, |_, _| {});
    let graph = LocalGraph {
        global_ids: (0..n as u64).collect(),
        csc: dcsc.to_csc(),
    };
    let mut store = ReadStore::empty(n);
    for (rid, read) in reads.iter().enumerate() {
        store.push(rid as u64, read.codes());
    }
    let (contigs, _) = local_assembly(
        &graph,
        &store,
        &AssemblyConfig {
            emit_cycles: true,
            ..AssemblyConfig::default()
        },
    );
    stats.contigs = contigs.len();
    contigs
}

/// Best-overlap-graph assembler (HiCanu/Canu stand-in).
pub fn assemble_bog(reads: &[Seq], cfg: &BaselineConfig) -> (Vec<Contig>, BaselineStats) {
    let mut stats = BaselineStats::default();
    let seeds = candidates_all_kmers(reads, cfg);
    let (edges, _) = build_edges(reads, &seeds, cfg, &mut stats);
    let edges = best_overlap_filter(reads.len(), edges);
    let contigs = assemble_from_edges(reads, edges, &mut stats);
    (contigs, stats)
}

/// Minimizer-sketch assembler (Hifiasm/Miniasm stand-in).
pub fn assemble_minimizer(reads: &[Seq], cfg: &BaselineConfig) -> (Vec<Contig>, BaselineStats) {
    let mut stats = BaselineStats::default();
    let seeds = candidates_minimizer(reads, cfg);
    let (edges, _) = build_edges(reads, &seeds, cfg, &mut stats);
    let edges = serial_transitive_reduction(reads.len(), edges, cfg.tr_fuzz);
    let contigs = assemble_from_edges(reads, edges, &mut stats);
    (contigs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use elba_seq::sim::{random_genome, simulate_reads, GenomeConfig, ReadSimConfig};

    fn dataset(glen: usize, seed: u64, err: f64) -> (Seq, Vec<Seq>) {
        let genome = random_genome(&GenomeConfig {
            length: glen,
            repeat_fraction: 0.0,
            repeat_unit_len: 0,
            repeat_divergence: 0.0,
            seed,
        });
        let reads = simulate_reads(
            &genome,
            &ReadSimConfig {
                depth: 12.0,
                mean_len: 1_200,
                min_len: 600,
                error_rate: err,
                seed: seed ^ 0xABCD,
            },
        )
        .into_iter()
        .map(|r| r.seq)
        .collect();
        (genome, reads)
    }

    fn covers_most(genome: &Seq, contigs: &[Contig], frac: f64) -> bool {
        let longest = contigs.iter().map(|c| c.seq.len()).max().unwrap_or(0);
        longest as f64 >= frac * genome.len() as f64
    }

    #[test]
    fn bog_assembles_error_free_reads() {
        let (genome, reads) = dataset(6_000, 31, 0.0);
        let (contigs, stats) = assemble_bog(&reads, &BaselineConfig::default());
        assert!(stats.dovetail_edges > 0);
        assert!(!contigs.is_empty());
        assert!(covers_most(&genome, &contigs, 0.5), "longest too short");
    }

    #[test]
    fn minimizer_assembles_error_free_reads() {
        let (genome, reads) = dataset(6_000, 37, 0.0);
        let (contigs, stats) = assemble_minimizer(&reads, &BaselineConfig::default());
        assert!(!contigs.is_empty());
        assert!(stats.aligned_pairs > 0);
        assert!(covers_most(&genome, &contigs, 0.4), "longest too short");
    }

    #[test]
    fn minimizer_aligns_fewer_pairs_than_bog() {
        // the raison d'être of sketching: fewer candidate alignments
        let (_, reads) = dataset(8_000, 41, 0.0);
        let cfg = BaselineConfig::default();
        let mut s1 = BaselineStats::default();
        let mut s2 = BaselineStats::default();
        let all = candidates_all_kmers(&reads, &cfg);
        let sketch = candidates_minimizer(&reads, &cfg);
        let _ = build_edges(&reads, &all, &cfg, &mut s1);
        let _ = build_edges(&reads, &sketch, &cfg, &mut s2);
        assert!(
            s2.candidate_pairs <= s1.candidate_pairs,
            "minimizer {} vs all {}",
            s2.candidate_pairs,
            s1.candidate_pairs
        );
    }

    #[test]
    fn noisy_reads_still_assemble() {
        let (_, reads) = dataset(6_000, 43, 0.005);
        let (contigs, _) = assemble_bog(&reads, &BaselineConfig::default());
        assert!(!contigs.is_empty());
        let total: usize = contigs.iter().map(|c| c.seq.len()).sum();
        assert!(total > 2_000);
    }

    #[test]
    fn best_overlap_filter_keeps_mutual_best_only() {
        let e = |suffix: u32| SgEdge {
            pre: 0,
            post: 0,
            src_rev: false,
            dst_rev: false,
            suffix,
        };
        // 0 has two right-end options: 1 (overhang 5) and 2 (overhang 9);
        // best is 1. Edge 0->2 must be dropped.
        let edges = vec![
            (0u32, 1u32, e(5)),
            (1u32, 0u32, e(5)),
            (0u32, 2u32, e(9)),
            (2u32, 0u32, e(9)),
        ];
        let kept = best_overlap_filter(3, edges);
        let pairs: Vec<(u32, u32)> = kept.iter().map(|&(u, v, _)| (u, v)).collect();
        assert!(pairs.contains(&(0, 1)));
        assert!(pairs.contains(&(1, 0)));
        assert!(!pairs.contains(&(0, 2)));
    }

    #[test]
    fn serial_tr_removes_skip_edges() {
        let e = |suffix: u32| SgEdge {
            pre: 0,
            post: 0,
            src_rev: false,
            dst_rev: false,
            suffix,
        };
        let edges = vec![
            (0u32, 1u32, e(10)),
            (1u32, 2u32, e(10)),
            (0u32, 2u32, e(20)),
        ];
        let kept = serial_transitive_reduction(3, edges, 2);
        let pairs: Vec<(u32, u32)> = kept.iter().map(|&(u, v, _)| (u, v)).collect();
        assert_eq!(pairs, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn empty_input() {
        let (contigs, stats) = assemble_bog(&[], &BaselineConfig::default());
        assert!(contigs.is_empty());
        assert_eq!(stats.candidate_pairs, 0);
    }
}
