//! Property tests for the genomics substrate: strand algebra, paper
//! slicing, k-mer canonicalization, FASTA round-trips, and the simulator
//! invariants that the quality evaluation depends on.

use elba_seq::dna::{complement, Seq};
use elba_seq::kmer::{canonical_kmers, pack, revcomp_packed, unpack_to_string};
use elba_seq::sim::{random_genome, simulate_reads, GenomeConfig, ReadSimConfig};
use proptest::prelude::*;

fn seq_strategy(max_len: usize) -> impl Strategy<Value = Seq> {
    proptest::collection::vec(0u8..4, 0..max_len).prop_map(Seq::from_codes)
}

proptest! {
    #[test]
    fn reverse_complement_is_involution(s in seq_strategy(300)) {
        prop_assert_eq!(s.reverse_complement().reverse_complement(), s);
    }

    #[test]
    fn complement_is_involution(b in 0u8..4) {
        prop_assert_eq!(complement(complement(b)), b);
    }

    #[test]
    fn rc_reverses_concatenation(a in seq_strategy(100), b in seq_strategy(100)) {
        // rc(a ⊕ b) == rc(b) ⊕ rc(a)
        let mut ab = a.clone();
        ab.extend_from(&b);
        let mut want = b.reverse_complement();
        want.extend_from(&a.reverse_complement());
        prop_assert_eq!(ab.reverse_complement(), want);
    }

    #[test]
    fn paper_slice_forward_and_reverse_agree(s in seq_strategy(120), x in 0usize..200, y in 0usize..200) {
        prop_assume!(!s.is_empty());
        let a = x % s.len();
        let b = y % s.len();
        // a == b is ambiguous in the paper's notation (a single base has
        // no direction); both orders then give the forward base.
        prop_assume!(a != b);
        let fwd = s.paper_slice(a.min(b), a.max(b));
        let rev = s.paper_slice(a.max(b), a.min(b));
        // l[j:i] is the reverse complement of l[i:j]
        prop_assert_eq!(rev, fwd.reverse_complement());
        prop_assert_eq!(fwd.len(), a.max(b) - a.min(b) + 1);
    }

    #[test]
    fn ascii_round_trip(s in seq_strategy(200)) {
        let text = s.to_string();
        let back: Seq = text.parse().expect("parse DNA");
        prop_assert_eq!(back, s);
    }

    #[test]
    fn packed_revcomp_matches_seq_revcomp(s in seq_strategy(40), k in 1usize..16) {
        prop_assume!(s.len() >= k);
        let packed = pack(&s, 0, k);
        let rc = revcomp_packed(packed, k);
        let want = s.substring(0, k).reverse_complement().to_string();
        prop_assert_eq!(unpack_to_string(rc, k), want);
    }

    #[test]
    fn canonical_kmers_strand_invariant(s in seq_strategy(150), k in 3usize..12) {
        prop_assume!(s.len() >= k);
        let mut fwd: Vec<u64> = canonical_kmers(&s, k).into_iter().map(|h| h.kmer).collect();
        let mut rev: Vec<u64> =
            canonical_kmers(&s.reverse_complement(), k).into_iter().map(|h| h.kmer).collect();
        fwd.sort_unstable();
        rev.sort_unstable();
        prop_assert_eq!(fwd, rev);
    }

    #[test]
    fn kmer_positions_in_bounds(s in seq_strategy(150), k in 3usize..12) {
        for hit in canonical_kmers(&s, k) {
            prop_assert!((hit.pos as usize) + k <= s.len());
        }
        if s.len() >= k {
            prop_assert_eq!(canonical_kmers(&s, k).len(), s.len() - k + 1);
        }
    }

    #[test]
    fn fasta_round_trip(seqs in proptest::collection::vec(seq_strategy(120), 0..6)) {
        use elba_seq::fasta::{read_fasta, write_fasta, FastaRecord};
        let records: Vec<FastaRecord> = seqs
            .into_iter()
            .enumerate()
            .map(|(i, seq)| FastaRecord { id: format!("r{i}"), seq })
            .collect();
        let mut buf = Vec::new();
        write_fasta(&mut buf, &records).expect("write");
        let back = read_fasta(std::io::BufReader::new(&buf[..])).expect("read");
        prop_assert_eq!(back, records);
    }

    #[test]
    fn error_free_simulated_reads_are_genome_substrings(seed in 0u64..500) {
        let genome = random_genome(&GenomeConfig {
            length: 4_000,
            repeat_fraction: 0.0,
            repeat_unit_len: 0,
            repeat_divergence: 0.0,
            seed,
        });
        let reads = simulate_reads(
            &genome,
            &ReadSimConfig { depth: 2.0, mean_len: 600, min_len: 200, error_rate: 0.0, seed },
        );
        for read in reads {
            let mut truth = genome.substring(read.truth.start, read.truth.end);
            if read.truth.rc {
                truth = truth.reverse_complement();
            }
            prop_assert_eq!(read.seq, truth);
        }
    }

    #[test]
    fn simulated_depth_is_respected(seed in 0u64..200, depth in 2u32..20) {
        let genome = random_genome(&GenomeConfig {
            length: 5_000,
            repeat_fraction: 0.0,
            repeat_unit_len: 0,
            repeat_divergence: 0.0,
            seed,
        });
        let reads = simulate_reads(
            &genome,
            &ReadSimConfig {
                depth: depth as f64,
                mean_len: 700,
                min_len: 200,
                error_rate: 0.0,
                seed: seed ^ 1,
            },
        );
        let total: usize = reads.iter().map(|r| r.seq.len()).sum();
        let want = depth as usize * 5_000;
        prop_assert!(total >= want, "total {} < target {}", total, want);
        // overshoot bounded by one read (the last one pushed us over)
        let max_read = reads.iter().map(|r| r.seq.len()).max().unwrap_or(0);
        prop_assert!(total < want + max_read + 1);
    }
}
