//! Property tests pinning the streaming k-mer exchange to the eager
//! reference on 1×1, 2×2 and 3×3 grids: identical `KmerTable` contents,
//! identical A-matrix triples, and exchange buffering bounded by
//! `batch_kmers`, across randomized read sets, k values and batch sizes.

use elba_comm::ProcGrid;
use elba_comm::{Backend, Runner};
use elba_seq::{
    build_a_triples_with_stats, count_kmers_with_stats, KmerConfig, KmerExchange, ReadStore, Seq,
};
use proptest::prelude::*;

/// Random 2-bit base codes → `Seq`s (length 0 reads are legal and must
/// simply contribute nothing).
fn seqs_from(codes: &[Vec<u8>]) -> Vec<Seq> {
    codes
        .iter()
        .map(|read| Seq::from_codes(read.iter().map(|b| b % 4).collect()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn streaming_matches_eager_on_all_grids(
        p_idx in 0usize..3,
        k in 4usize..8,
        batch in 1usize..40,
        reliable_min in 1u32..3,
        codes in proptest::collection::vec(proptest::collection::vec(0u8..4, 0..40), 1..10),
    ) {
        let p = [1usize, 4, 9][p_idx];
        let reads = seqs_from(&codes);
        let ok = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
            let grid = ProcGrid::new(comm);
            let store = ReadStore::from_replicated(&grid, &reads);
            let run = |exchange: KmerExchange| {
                let cfg = KmerConfig {
                    k,
                    reliable_min,
                    reliable_max: u32::MAX,
                    exchange,
                    batch_kmers: batch,
                    threads: 1,
                };
                let (table, count_stats) = count_kmers_with_stats(&grid, &store, &cfg);
                let (triples, triple_stats) =
                    build_a_triples_with_stats(&grid, &store, &table, &cfg);
                // n_global + n_local pin the table shape; the triples pin
                // the id assignment (columns are table lookups) and are
                // already in canonical (read, column) order.
                ((table.n_global, table.n_local(), triples), count_stats, triple_stats)
            };
            let (eager, _, _) = run(KmerExchange::Eager);
            let (streaming, count_stats, triple_stats) = run(KmerExchange::Streaming);
            // Byte-identical stage outputs...
            assert_eq!(eager, streaming, "rank {}", grid.world().rank());
            // ...and the streaming bound: never more than batch_kmers
            // buffered on either side of the exchange.
            assert!(count_stats.peak_outgoing_items <= batch);
            assert!(count_stats.peak_inbound_items <= batch);
            assert!(triple_stats.peak_outgoing_items <= batch);
            assert!(triple_stats.peak_inbound_items <= batch);
            true
        });
        prop_assert!(ok.iter().all(|&b| b), "p={}", p);
    }
}
