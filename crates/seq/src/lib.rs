//! # elba-seq — genomics substrate for ELBA-RS
//!
//! Everything ELBA's pipeline needs below the sparse-matrix layer:
//!
//! * [`dna::Seq`] — DNA sequences with the paper's inclusive
//!   forward/reverse-complement slicing (`l[i:j]` / `l[j:i]`, §4.4),
//! * [`kmer`] — packed canonical k-mers (k ≤ 31) with rolling extraction,
//! * [`fasta`] — FASTA I/O,
//! * [`sim`] — seeded synthetic genome + long-read simulator standing in
//!   for the paper's Table 2 datasets (depth / read length / error rate /
//!   repeat content preserved at scaled genome sizes),
//! * [`store::ReadStore`] — the distributed packed char-array read store
//!   with offset tables and the MPI 2³¹−1-count contiguous-datatype
//!   exchange path (§4.3),
//! * [`kcount`] — distributed reliable k-mer counting and the
//!   |reads|×|k-mers| matrix A construction (`KmerCounter`/`GenerateA`
//!   of Algorithm 1).

pub mod dna;
pub mod fasta;
pub mod gfa;
pub mod kcount;
pub mod kmer;
pub mod sim;
pub mod store;

pub use dna::Seq;
pub use kcount::{
    build_a_triples, build_a_triples_with_stats, count_kmers, count_kmers_with_stats, AEntry,
    ExchangeStats, KmerConfig, KmerExchange, KmerTable,
};
pub use sim::{DatasetSpec, ReadSimConfig, SimulatedRead};
pub use store::ReadStore;
