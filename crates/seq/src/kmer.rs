//! K-mer extraction: 2-bit packed k-mers (k ≤ 31, covering the paper's
//! `k = 31` and `k = 17` settings) with canonical form and rolling
//! extraction over a [`Seq`].

use crate::dna::Seq;

/// Maximum supported k (2 bits per base in a `u64`, one spare bit pair).
pub const MAX_K: usize = 31;

/// A k-mer occurrence within a read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KmerHit {
    /// Packed canonical k-mer.
    pub kmer: u64,
    /// 0-based position of the k-mer's first base in the read.
    pub pos: u32,
    /// `true` if the canonical form equals the forward strand occurrence.
    pub fwd: bool,
}

/// Pack the first `k` bases starting at `offset` (no canonicalization).
pub fn pack(seq: &Seq, offset: usize, k: usize) -> u64 {
    debug_assert!(k <= MAX_K && offset + k <= seq.len());
    let mut v = 0u64;
    for i in 0..k {
        v = (v << 2) | seq.get(offset + i) as u64;
    }
    v
}

/// Reverse complement of a packed k-mer.
pub fn revcomp_packed(kmer: u64, k: usize) -> u64 {
    let mut out = 0u64;
    let mut v = kmer;
    for _ in 0..k {
        out = (out << 2) | (3 - (v & 3));
        v >>= 2;
    }
    out
}

/// Canonical form: the lexicographically smaller of a k-mer and its
/// reverse complement, plus whether the forward strand won.
#[inline]
pub fn canonical(fwd: u64, rc: u64) -> (u64, bool) {
    if fwd <= rc {
        (fwd, true)
    } else {
        (rc, false)
    }
}

/// Rolling iterator over the canonical k-mers of a sequence.
pub struct KmerScan<'a> {
    seq: &'a Seq,
    k: usize,
    pos: usize,
    fwd: u64,
    rc: u64,
    mask: u64,
}

impl<'a> KmerScan<'a> {
    pub fn new(seq: &'a Seq, k: usize) -> Self {
        assert!((1..=MAX_K).contains(&k), "k must be in 1..={MAX_K}");
        let mask = if 2 * k == 64 {
            u64::MAX
        } else {
            (1u64 << (2 * k)) - 1
        };
        let mut scan = KmerScan {
            seq,
            k,
            pos: 0,
            fwd: 0,
            rc: 0,
            mask,
        };
        if seq.len() >= k {
            scan.fwd = pack(seq, 0, k);
            scan.rc = revcomp_packed(scan.fwd, k);
        }
        scan
    }
}

impl Iterator for KmerScan<'_> {
    type Item = KmerHit;

    fn next(&mut self) -> Option<KmerHit> {
        if self.seq.len() < self.k || self.pos + self.k > self.seq.len() {
            return None;
        }
        let (kmer, fwd) = canonical(self.fwd, self.rc);
        let hit = KmerHit {
            kmer,
            pos: self.pos as u32,
            fwd,
        };
        // Roll to the next window.
        if self.pos + self.k < self.seq.len() {
            let incoming = self.seq.get(self.pos + self.k) as u64;
            self.fwd = ((self.fwd << 2) | incoming) & self.mask;
            self.rc = (self.rc >> 2) | ((3 - incoming) << (2 * (self.k - 1)));
        }
        self.pos += 1;
        Some(hit)
    }
}

/// All canonical k-mer hits of a sequence.
pub fn canonical_kmers(seq: &Seq, k: usize) -> Vec<KmerHit> {
    KmerScan::new(seq, k).collect()
}

/// Unpack a k-mer into ASCII (for debugging and FASTA headers).
pub fn unpack_to_string(kmer: u64, k: usize) -> String {
    (0..k)
        .rev()
        .map(|i| crate::dna::base_to_char(((kmer >> (2 * i)) & 3) as u8))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> Seq {
        s.parse().expect("valid dna")
    }

    #[test]
    fn pack_unpack_round_trip() {
        let s = seq("ACGTTGCA");
        for k in 1..=8 {
            let packed = pack(&s, 0, k);
            assert_eq!(unpack_to_string(packed, k), s.to_string()[..k]);
        }
    }

    #[test]
    fn revcomp_packed_matches_seq_rc() {
        let s = seq("ACGTTGCAACGT");
        let k = 12;
        let packed = pack(&s, 0, k);
        let rc = revcomp_packed(packed, k);
        assert_eq!(unpack_to_string(rc, k), s.reverse_complement().to_string());
    }

    #[test]
    fn rolling_matches_fresh_pack() {
        let s = seq("ACGTTGCAACGTGGATCCAT");
        let k = 7;
        let hits = canonical_kmers(&s, k);
        assert_eq!(hits.len(), s.len() - k + 1);
        for hit in &hits {
            let fwd = pack(&s, hit.pos as usize, k);
            let rc = revcomp_packed(fwd, k);
            let (want, want_fwd) = canonical(fwd, rc);
            assert_eq!(hit.kmer, want, "pos {}", hit.pos);
            assert_eq!(hit.fwd, want_fwd);
        }
    }

    #[test]
    fn canonical_is_strand_invariant() {
        let s = seq("ACGTTGCAACGTGGATCCATTTACG");
        let rc = s.reverse_complement();
        let k = 9;
        let mut a: Vec<u64> = canonical_kmers(&s, k).into_iter().map(|h| h.kmer).collect();
        let mut b: Vec<u64> = canonical_kmers(&rc, k)
            .into_iter()
            .map(|h| h.kmer)
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn short_sequence_yields_nothing() {
        assert!(canonical_kmers(&seq("ACG"), 5).is_empty());
    }

    #[test]
    fn k31_supported() {
        let s = seq(&"ACGT".repeat(10)); // 40 bases
        let hits = canonical_kmers(&s, 31);
        assert_eq!(hits.len(), 10);
    }

    #[test]
    fn palindrome_canonical_prefers_forward() {
        // ACGT is its own reverse complement; canonical must tie-break fwd.
        let s = seq("ACGT");
        let hits = canonical_kmers(&s, 4);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].fwd);
    }
}
