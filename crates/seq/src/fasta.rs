//! Minimal FASTA reader/writer (80-column wrapped), enough to ingest
//! simulated datasets and emit contig sets for downstream inspection.

use std::io::{self, BufRead, Write};

use crate::dna::Seq;

/// One FASTA record.
#[derive(Debug, Clone, PartialEq)]
pub struct FastaRecord {
    pub id: String,
    pub seq: Seq,
}

/// Parse FASTA records from a reader. Lines are concatenated per record;
/// ambiguity codes map to `A` (see [`Seq::from_ascii`]).
pub fn read_fasta<R: BufRead>(reader: R) -> io::Result<Vec<FastaRecord>> {
    let mut records = Vec::new();
    let mut id: Option<String> = None;
    let mut bases: Vec<u8> = Vec::new();
    for line in reader.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(header) = trimmed.strip_prefix('>') {
            if let Some(prev) = id.take() {
                records.push(FastaRecord {
                    id: prev,
                    seq: Seq::from_ascii(&bases),
                });
                bases.clear();
            }
            id = Some(header.split_whitespace().next().unwrap_or("").to_owned());
        } else if id.is_some() {
            bases.extend_from_slice(trimmed.as_bytes());
        } else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "FASTA data before first header",
            ));
        }
    }
    if let Some(prev) = id {
        records.push(FastaRecord {
            id: prev,
            seq: Seq::from_ascii(&bases),
        });
    }
    Ok(records)
}

/// Write records in FASTA format, wrapping sequence lines at 80 columns.
pub fn write_fasta<W: Write>(mut writer: W, records: &[FastaRecord]) -> io::Result<()> {
    for record in records {
        writeln!(writer, ">{}", record.id)?;
        let text = record.seq.to_string();
        for chunk in text.as_bytes().chunks(80) {
            writer.write_all(chunk)?;
            writer.write_all(b"\n")?;
        }
        if text.is_empty() {
            writer.write_all(b"\n")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn round_trip() {
        let records = vec![
            FastaRecord {
                id: "read1".into(),
                seq: "ACGTACGT".parse().expect("dna"),
            },
            FastaRecord {
                id: "read2".into(),
                seq: "TTTT".parse().expect("dna"),
            },
        ];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &records).expect("write");
        let back = read_fasta(BufReader::new(&buf[..])).expect("read");
        assert_eq!(back, records);
    }

    #[test]
    fn long_sequences_wrap() {
        let records = vec![FastaRecord {
            id: "long".into(),
            seq: Seq::from_codes(vec![0; 200]),
        }];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &records).expect("write");
        let text = String::from_utf8(buf.clone()).expect("utf8");
        assert!(text.lines().skip(1).all(|l| l.len() <= 80));
        let back = read_fasta(BufReader::new(&buf[..])).expect("read");
        assert_eq!(back[0].seq.len(), 200);
    }

    #[test]
    fn header_description_is_dropped() {
        let input = b">r1 some description here\nACGT\n";
        let back = read_fasta(BufReader::new(&input[..])).expect("read");
        assert_eq!(back[0].id, "r1");
        assert_eq!(back[0].seq.to_string(), "ACGT");
    }

    #[test]
    fn multi_line_record_concatenates() {
        let input = b">r\nAC\nGT\nAA\n";
        let back = read_fasta(BufReader::new(&input[..])).expect("read");
        assert_eq!(back[0].seq.to_string(), "ACGTAA");
    }

    #[test]
    fn data_before_header_is_error() {
        let input = b"ACGT\n>r\nAC\n";
        assert!(read_fasta(BufReader::new(&input[..])).is_err());
    }
}
