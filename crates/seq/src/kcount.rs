//! Distributed k-mer counting and construction of the |reads|×|k-mers|
//! matrix **A** (the `KmerCounter` + `GenerateA` steps of Algorithm 1).
//!
//! Canonical k-mers are hashed to an owner rank, counted there, and
//! filtered to the *reliable* band `[reliable_min, reliable_max]`:
//! singletons are almost surely sequencing errors, ultra-frequent k-mers
//! come from repeats and would densify `C = AAᵀ` (diBELLA 2D's reliable
//! k-mer selection). Surviving k-mers get dense global column ids via an
//! exclusive scan over per-owner counts.
//!
//! Both exchanges of the stage (partial counts to owners, occurrence
//! records to owners) run under a [`KmerExchange`] schedule: the original
//! **eager** path materializes one `Vec<Vec<T>>` of every outgoing record
//! and blocks in a flat `alltoallv`, while the **streaming** path scans
//! reads in batches of [`KmerConfig::batch_kmers`] occurrences, posts
//! each batch's buckets as chunks of a non-blocking
//! [`ialltoallv`](elba_comm::Comm::ialltoallv_stream) and folds inbound
//! chunks into the local accumulators as they arrive — ELBA's custom
//! all-to-all, whose *application-side* buffers never hold the full
//! outgoing or incoming exchange (the in-process transport's mailboxes
//! are unbounded and eager, so a rank that scans much slower than its
//! peers can still accumulate undrained chunks there; sender-side flow
//! control is a ROADMAP item). Both schedules produce identical results.

use std::collections::{HashMap, HashSet};

use elba_comm::{Comm, IalltoallvRequest, ProcGrid, Rank};

use crate::kmer::canonical_kmers;
use crate::store::ReadStore;

/// Exchange schedule for the k-mer stage's personalized all-to-alls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KmerExchange {
    /// Materialize the full outgoing exchange, then one blocking
    /// `alltoallv`. Simple; peak memory is the whole exchange.
    Eager,
    /// Scan reads in batches of [`KmerConfig::batch_kmers`] occurrences;
    /// post each batch as non-blocking `ialltoallv` chunks while folding
    /// previously received chunks into the accumulators. Peak exchange
    /// buffering is bounded by the batch, not the dataset.
    Streaming,
}

/// Parameters for k-mer selection.
#[derive(Debug, Clone)]
pub struct KmerConfig {
    pub k: usize,
    /// Minimum global multiplicity for a reliable k-mer (≥2 drops errors).
    pub reliable_min: u32,
    /// Maximum multiplicity (drops repeat-induced k-mers).
    pub reliable_max: u32,
    /// How `count_kmers` / `build_a_triples` ship their exchanges.
    pub exchange: KmerExchange,
    /// Streaming batch size: maximum k-mer occurrences buffered on the
    /// send side before a flush (ignored by the eager schedule).
    pub batch_kmers: usize,
    /// Intra-rank worker threads for the k-mer scan (per-read canonical
    /// k-mer extraction; `0` inherits the global
    /// [`elba_par::ElbaPar`] knob, default 1 = the historical serial
    /// scan). Reads are scanned in bounded groups whose hit lists are
    /// computed in parallel but *consumed in read order*, so occurrence
    /// streams — and everything downstream — are identical across
    /// thread counts; workers never enter the comm layer (the exchange
    /// stays on the rank thread).
    pub threads: usize,
}

impl Default for KmerConfig {
    fn default() -> Self {
        KmerConfig {
            k: 31,
            reliable_min: 2,
            reliable_max: u32::MAX,
            exchange: KmerExchange::Streaming,
            batch_kmers: 1 << 16,
            threads: 0,
        }
    }
}

/// Owner rank of a packed k-mer (multiplicative hash).
#[inline]
pub fn kmer_owner(kmer: u64, p: usize) -> usize {
    ((kmer.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17) % p as u64) as usize
}

/// The distributed reliable-k-mer table: each rank holds the k-mers it
/// owns with their dense global column ids.
#[derive(Debug, Clone)]
pub struct KmerTable {
    pub k: usize,
    /// Total reliable k-mers across all ranks (= #columns of A).
    pub n_global: u64,
    /// Locally owned k-mer → global id.
    local: HashMap<u64, u64>,
}

impl KmerTable {
    /// Locally owned k-mer count.
    pub fn n_local(&self) -> usize {
        self.local.len()
    }

    /// Global id of a locally owned k-mer.
    pub fn id_of(&self, kmer: u64) -> Option<u64> {
        self.local.get(&kmer).copied()
    }
}

/// One entry of the A matrix: the position (and strand) of a reliable
/// k-mer occurrence within a read. This is the value BELLA's overlap
/// semiring consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct AEntry {
    /// Position of the k-mer's first base within the read.
    pub pos: u32,
    /// Whether the canonical k-mer matched the read's forward strand.
    pub fwd: bool,
}

elba_comm::impl_comm_msg_pod!(AEntry);
elba_mem::impl_deep_bytes_pod!(AEntry);

/// Buffer high-water marks of one k-mer-stage exchange — the hook the
/// memory-bound tests (and the bench) assert against. For the streaming
/// schedule `peak_outgoing_items ≤ batch_kmers` and `peak_inbound_items`
/// is one chunk (≤ `batch_kmers`) by construction; the eager schedule
/// reports the full materialized exchange. The byte fields are the same
/// peaks in record bytes; every exchange also feeds them into the
/// rank's memory tracker ([`elba_comm::Comm::record_mem_transient`]), so
/// a profiled run's `mem-hw` column shows the CountKmer stage's real
/// buffer bound.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExchangeStats {
    /// Most items ever resident in the outgoing buckets at once.
    pub peak_outgoing_items: usize,
    /// Most items ever resident on the receive side before being folded
    /// (largest single inbound chunk for streaming; the whole incoming
    /// exchange for eager).
    pub peak_inbound_items: usize,
    /// `peak_outgoing_items` in record bytes.
    pub peak_outgoing_bytes: usize,
    /// `peak_inbound_items` in record bytes.
    pub peak_inbound_bytes: usize,
}

impl ExchangeStats {
    /// Resident-byte spike this exchange contributed (both sides).
    pub fn peak_bytes(&self) -> usize {
        self.peak_outgoing_bytes + self.peak_inbound_bytes
    }
}

/// Route `items` (already tagged with a destination rank) through a
/// blocking `alltoallv`, materializing the whole exchange, and fold each
/// source's buffer. The reference schedule.
fn eager_exchange<T: elba_comm::CommMsg + Clone + Sync>(
    world: &Comm,
    items: impl Iterator<Item = (Rank, T)>,
    mut fold: impl FnMut(Rank, Vec<T>),
) -> ExchangeStats {
    let record_bytes = std::mem::size_of::<T>();
    let mut outgoing: Vec<Vec<T>> = (0..world.size()).map(|_| Vec::new()).collect();
    let mut total = 0usize;
    for (dst, item) in items {
        outgoing[dst].push(item);
        total += 1;
    }
    let incoming = world.alltoallv(outgoing);
    let inbound: usize = incoming.iter().map(Vec::len).sum();
    let stats = ExchangeStats {
        peak_outgoing_items: total,
        peak_inbound_items: inbound,
        peak_outgoing_bytes: total * record_bytes,
        peak_inbound_bytes: inbound * record_bytes,
    };
    for (src, buf) in incoming.into_iter().enumerate() {
        fold(src, buf);
    }
    world.record_mem_transient(stats.peak_bytes());
    stats
}

/// Route `items` through a streaming non-blocking `ialltoallv`: buffer at
/// most `batch` items, post the batch as chunks, and fold whatever chunks
/// have arrived before scanning the next batch. After the scan, seal the
/// sends and drain the remainder (blocking waits are profiled as *wait*
/// time). No more than `batch` outgoing items — buffered buckets *or*
/// credit-starved chunks queued in the stream — are ever resident, the
/// memory bound the eager schedule lacks. The bound is end-to-end, not
/// just application-side: posting throttles on [`wait_for_credit`], and
/// chunks are sized at `batch / window` so each destination's credit
/// window admits at most ~`batch` items into its transport mailbox per
/// peer — a rank folding slower than its peers scan holds ≤ `batch`
/// un-folded items *per source*, never an unbounded backlog.
///
/// [`wait_for_credit`]: elba_comm::IalltoallvRequest::wait_for_credit
fn streaming_exchange<T: elba_comm::CommMsg + Clone + Sync>(
    world: &Comm,
    batch: usize,
    items: impl Iterator<Item = (Rank, T)>,
    mut fold: impl FnMut(Rank, Vec<T>),
) -> ExchangeStats {
    let p = world.size();
    let batch = batch.max(1);
    let record_bytes = std::mem::size_of::<T>();
    // Chunks are sized so the credit window admits at most one batch's
    // worth of items into any destination's mailbox from this rank:
    // window × chunk ≈ batch. Without this, the transport could hold
    // `window` *full-batch* chunks per source — a slow-folding rank
    // would be resident `window ×` over the documented bound.
    let window = IalltoallvRequest::<T>::DEFAULT_WINDOW;
    let chunk_elems = batch.div_ceil(window).max(1);
    let mut stream = world.ialltoallv_stream_with_window::<T>(chunk_elems, window);
    let mut buckets: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
    let mut buffered = 0usize;
    let mut stats = ExchangeStats::default();
    for (dst, item) in items {
        buckets[dst].push(item);
        buffered += 1;
        stats.peak_outgoing_items = stats.peak_outgoing_items.max(buffered);
        if buffered >= batch {
            for (dst, bucket) in buckets.iter_mut().enumerate() {
                if !bucket.is_empty() {
                    stream.post(dst, std::mem::take(bucket));
                }
            }
            buffered = 0;
            // Overlap: fold whatever peers have already shipped while
            // our next batch is still being scanned.
            while let Some((src, chunk)) = stream.try_next() {
                stats.peak_inbound_items = stats.peak_inbound_items.max(chunk.len());
                fold(src, chunk);
            }
            // Producer throttle: chunks past the credit window queue
            // sender-side; park here (folding inbound chunks as they
            // land, which is what grants our peers credits) instead of
            // scanning ahead, so a slow peer bounds the backlog at the
            // one batch just posted rather than growing it without
            // limit. `wait_for_credit` returns whenever a chunk is
            // consumable, so the drain below keeps granting credits —
            // two mutually credit-exhausted ranks cannot both park
            // forever.
            loop {
                let backlog = stream.pending_send_items();
                stats.peak_outgoing_items = stats.peak_outgoing_items.max(backlog);
                if backlog == 0 {
                    break;
                }
                stream.wait_for_credit();
                while let Some((src, chunk)) = stream.try_next() {
                    stats.peak_inbound_items = stats.peak_inbound_items.max(chunk.len());
                    fold(src, chunk);
                }
            }
        }
    }
    for (dst, bucket) in buckets.iter_mut().enumerate() {
        if !bucket.is_empty() {
            stream.post(dst, std::mem::take(bucket));
        }
    }
    stats.peak_outgoing_items = stats.peak_outgoing_items.max(stream.pending_send_items());
    stream.finish_sends();
    for (src, chunk) in stream.by_ref() {
        stats.peak_inbound_items = stats.peak_inbound_items.max(chunk.len());
        fold(src, chunk);
    }
    stats.peak_outgoing_bytes = stats.peak_outgoing_items * record_bytes;
    stats.peak_inbound_bytes = stats.peak_inbound_items * record_bytes;
    // The flow-control window *permits* each of the other p-1 ranks to
    // keep `window` unacked chunks (≈ one batch) in our mailbox; charge
    // that permitted ceiling rather than an observed occupancy — the
    // mailbox's actual fill is timing-dependent, and the tracker's
    // charges must stay deterministic for the budget verdict to certify
    // a guaranteed bound.
    let inbound_ceiling = p.saturating_sub(1) * window * chunk_elems * record_bytes;
    world.record_mem_transient(stats.peak_bytes() + inbound_ceiling);
    stats
}

/// Dispatch on the configured schedule.
fn exchange<T: elba_comm::CommMsg + Clone + Sync>(
    world: &Comm,
    cfg: &KmerConfig,
    items: impl Iterator<Item = (Rank, T)>,
    fold: impl FnMut(Rank, Vec<T>),
) -> ExchangeStats {
    match cfg.exchange {
        KmerExchange::Eager => eager_exchange(world, items, fold),
        KmerExchange::Streaming => streaming_exchange(world, cfg.batch_kmers, items, fold),
    }
}

/// Count canonical k-mers across all ranks and keep the reliable band
/// (collective). Global ids are assigned deterministically (sorted within
/// each owner, offset by exclusive scan). See [`count_kmers_with_stats`]
/// for the buffer-accounting variant.
pub fn count_kmers(grid: &ProcGrid, store: &ReadStore, cfg: &KmerConfig) -> KmerTable {
    count_kmers_with_stats(grid, store, cfg).0
}

/// [`count_kmers`] plus the exchange's buffer high-water marks.
///
/// The eager schedule first folds the whole local read set into one
/// multiplicity map (one record per *distinct* local k-mer crosses the
/// wire); the streaming schedule aggregates within each
/// `batch_kmers`-occurrence window (`WindowCounts`) and ships the
/// window's partial counts. Owners sum either way, so the table is
/// identical — global `+` is associative and commutative.
pub fn count_kmers_with_stats(
    grid: &ProcGrid,
    store: &ReadStore,
    cfg: &KmerConfig,
) -> (KmerTable, ExchangeStats) {
    let world = grid.world();
    let p = world.size();
    let threads = elba_par::ElbaPar::resolve(cfg.threads);
    let scan_stats = ScanStats::default();
    let mut owned: HashMap<u64, u32> = HashMap::new();
    let fold = |_src: Rank, buf: Vec<(u64, u32)>| {
        for (kmer, count) in buf {
            *owned.entry(kmer).or_insert(0) += count;
        }
    };
    let stats = match cfg.exchange {
        KmerExchange::Eager => {
            // Local counting pass over the whole store (the scan's
            // per-read k-mer extraction fans out over the intra-rank
            // workers), then route the aggregated partial counts to
            // their owners.
            let mut local_counts: HashMap<u64, u32> = HashMap::new();
            for (_, hit) in occurrence_scan(store, cfg.k, threads, &scan_stats) {
                *local_counts.entry(hit.kmer).or_insert(0) += 1;
            }
            eager_exchange(
                world,
                local_counts
                    .into_iter()
                    .map(|(kmer, count)| (kmer_owner(kmer, p), (kmer, count))),
                fold,
            )
        }
        KmerExchange::Streaming => streaming_exchange(
            world,
            cfg.batch_kmers,
            WindowCounts {
                kmers: occurrence_scan(store, cfg.k, threads, &scan_stats).map(|(_, hit)| hit.kmer),
                window: cfg.batch_kmers.max(1),
                p,
                drained: Vec::new().into_iter(),
            },
            fold,
        ),
    };
    book_scan(world, threads, &scan_stats);
    // Reliable band filter.
    let mut reliable: Vec<u64> = owned
        .into_iter()
        .filter(|&(_, c)| c >= cfg.reliable_min && c <= cfg.reliable_max)
        .map(|(kmer, _)| kmer)
        .collect();
    reliable.sort_unstable();
    // Dense ids via exclusive scan of per-owner counts.
    let offset = world.exscan(reliable.len() as u64, 0, |a, b| a + b);
    let n_global = world.allreduce(reliable.len() as u64, |a, b| a + b);
    let local: HashMap<u64, u64> = reliable
        .into_iter()
        .enumerate()
        .map(|(i, kmer)| (kmer, offset + i as u64))
        .collect();
    (
        KmerTable {
            k: cfg.k,
            n_global,
            local,
        },
        stats,
    )
}

/// Generate the triples of the |reads|×|k-mers| matrix A (collective):
/// `(read_id, kmer_column, AEntry)` for every reliable k-mer occurrence.
/// A read contributes one entry per distinct k-mer (first occurrence), as
/// in BELLA's sparse A construction. Triples are returned sorted by
/// `(read, column)` — a canonical order, so the eager and streaming
/// schedules (whose arrival orders differ) are byte-identical — ready for
/// `DistMat::from_triples`.
pub fn build_a_triples(
    grid: &ProcGrid,
    store: &ReadStore,
    table: &KmerTable,
    cfg: &KmerConfig,
) -> Vec<(u64, u64, AEntry)> {
    build_a_triples_with_stats(grid, store, table, cfg).0
}

/// [`build_a_triples`] plus the exchange's buffer high-water marks.
pub fn build_a_triples_with_stats(
    grid: &ProcGrid,
    store: &ReadStore,
    table: &KmerTable,
    cfg: &KmerConfig,
) -> (Vec<(u64, u64, AEntry)>, ExchangeStats) {
    let world = grid.world();
    let p = world.size();
    let threads = elba_par::ElbaPar::resolve(cfg.threads);
    let scan_stats = ScanStats::default();
    let mut triples = Vec::new();
    // (kmer, read, pos, fwd) routed to the kmer's owner for id lookup;
    // each read reports a k-mer once (first occurrence).
    let items = occurrence_scan(store, table.k, threads, &scan_stats)
        .scan(
            (u64::MAX, HashSet::new()),
            |(current_read, seen), (read_id, hit)| {
                if *current_read != read_id {
                    *current_read = read_id;
                    seen.clear();
                }
                Some(seen.insert(hit.kmer).then_some((read_id, hit)))
            },
        )
        .flatten()
        .map(|(read_id, hit)| {
            (
                kmer_owner(hit.kmer, p),
                (hit.kmer, read_id, hit.pos, hit.fwd),
            )
        });
    let stats = exchange(world, cfg, items, |_src, buf| {
        for (kmer, read_id, pos, fwd) in buf {
            if let Some(col) = table.id_of(kmer) {
                triples.push((read_id, col, AEntry { pos, fwd }));
            }
        }
    });
    book_scan(world, threads, &scan_stats);
    // Canonical order: streaming arrival order is scheduling-dependent,
    // and downstream determinism (same contigs on every run) should not
    // hinge on `DistMat::from_triples` re-sorting.
    triples.sort_unstable();
    (triples, stats)
}

/// Per-window count aggregation for the streaming count path: consume up
/// to `window` occurrences at a time, fold them into a `window`-bounded
/// multiplicity map, and emit one `(owner, (kmer, partial_count))` record
/// per distinct k-mer in the window. Memory stays O(window) while wire
/// traffic shrinks by the within-window multiplicity factor (the eager
/// path aggregates the whole local store; this is the batch-bounded
/// middle ground). Owners sum partial counts, so window boundaries are
/// invisible in the result.
struct WindowCounts<I: Iterator<Item = u64>> {
    kmers: I,
    window: usize,
    p: usize,
    drained: std::vec::IntoIter<(u64, u32)>,
}

impl<I: Iterator<Item = u64>> Iterator for WindowCounts<I> {
    type Item = (Rank, (u64, u32));

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some((kmer, count)) = self.drained.next() {
                return Some((kmer_owner(kmer, self.p), (kmer, count)));
            }
            let mut counts: HashMap<u64, u32> = HashMap::new();
            for kmer in self.kmers.by_ref().take(self.window) {
                *counts.entry(kmer).or_insert(0) += 1;
            }
            if counts.is_empty() {
                return None;
            }
            // Emit each window in sorted k-mer order, not HashMap order:
            // the randomized hash seed would otherwise reshuffle where
            // `streaming_exchange`'s batch boundaries fall, shifting
            // per-post bucket sizes and hence chunk counts — and every
            // chunk books its structural bytes, so profiled wire bytes
            // would drift run-to-run (the model must be deterministic).
            let mut window: Vec<(u64, u32)> = counts.into_iter().collect();
            window.sort_unstable();
            self.drained = window.into_iter();
        }
    }
}

/// Side-band accounting for one [`occurrence_scan`]: the scan's peak
/// buffered hit count (bytes the grouped parallel scan holds beyond the
/// serial one-read-at-a-time behavior) and the wall seconds its
/// parallel refills took. Interior-mutable because the scan is consumed
/// as an iterator; the owning exchange function books both to the
/// profile afterwards ([`book_scan`]).
#[derive(Debug, Default)]
struct ScanStats {
    peak_items: std::cell::Cell<usize>,
    par_secs: std::cell::Cell<f64>,
}

/// Book a finished scan's accounting: threaded-refill wall time to the
/// profile's par bucket, the group hit buffer as a transient spike.
/// Serial scans buffer one read at a time — exactly the historical
/// behavior — and book nothing, keeping `threads = 1` profiles
/// bit-identical.
fn book_scan(world: &Comm, threads: usize, stats: &ScanStats) {
    if threads > 1 {
        world.record_par_time(stats.par_secs.get());
        world.record_mem_transient(
            stats.peak_items.get() * std::mem::size_of::<(u64, crate::kmer::KmerHit)>(),
        );
    }
}

/// Flat scan of every canonical k-mer occurrence in the local store, in
/// read order: `(read_id, hit)`. The per-read k-mer extraction — the
/// scan's compute kernel — fans out over `threads` intra-rank workers
/// in bounded read groups; hits are buffered per group and yielded in
/// read order, so the occurrence stream is identical for every thread
/// count (with one thread the group is a single read, the historical
/// allocation profile).
fn occurrence_scan<'s>(
    store: &'s ReadStore,
    k: usize,
    threads: usize,
    stats: &'s ScanStats,
) -> OccurrenceScan<'s> {
    OccurrenceScan {
        reads: store.iter().collect(),
        next: 0,
        k,
        threads: threads.max(1),
        buffered: Vec::new().into_iter(),
        stats,
    }
}

/// Iterator behind [`occurrence_scan`].
struct OccurrenceScan<'s> {
    reads: Vec<(u64, &'s [u8])>,
    next: usize,
    k: usize,
    threads: usize,
    buffered: std::vec::IntoIter<(u64, crate::kmer::KmerHit)>,
    stats: &'s ScanStats,
}

impl OccurrenceScan<'_> {
    /// Bases each worker should receive per refill: enough scan work
    /// (~tens of µs per KiB) to amortize the scoped spawn/join
    /// (~tens of µs total), so short-read stores don't pay one spawn
    /// cycle per handful of reads. The buffered hits per refill are
    /// ≈ `threads × GROUP_BASES_PER_WORKER` records — reported to the
    /// tracker via the scan stats.
    const GROUP_BASES_PER_WORKER: usize = 8 << 10;

    /// End index of the next read group: a single read for the serial
    /// path (the historical flat_map allocation profile — no extra
    /// buffering), otherwise at least two reads per worker and enough
    /// total bases to amortize the spawn.
    fn group_end(&self) -> usize {
        if self.threads <= 1 {
            return (self.next + 1).min(self.reads.len());
        }
        let min_reads = self.threads * 2;
        let target_bases = self.threads * Self::GROUP_BASES_PER_WORKER;
        let mut bases = 0usize;
        let mut end = self.next;
        while end < self.reads.len() && (end - self.next < min_reads || bases < target_bases) {
            bases += self.reads[end].1.len();
            end += 1;
        }
        end
    }

    fn refill(&mut self) -> bool {
        let group_end = self.group_end();
        if self.next >= group_end {
            return false;
        }
        let group = &self.reads[self.next..group_end];
        self.next = group_end;
        let k = self.k;
        let started = std::time::Instant::now();
        let per_read: Vec<Vec<crate::kmer::KmerHit>> =
            elba_par::run_indexed(group.len(), self.threads, |gi| {
                let seq = crate::dna::Seq::from_codes(group[gi].1.to_vec());
                canonical_kmers(&seq, k)
            });
        // `par-s` gate: a trailing single-read group runs the serial
        // path inside `run_indexed` and books nothing.
        if self.threads > 1 && group.len() > 1 {
            self.stats
                .par_secs
                .set(self.stats.par_secs.get() + started.elapsed().as_secs_f64());
        }
        let flat: Vec<(u64, crate::kmer::KmerHit)> = group
            .iter()
            .zip(per_read)
            .flat_map(|(&(read_id, _), hits)| hits.into_iter().map(move |hit| (read_id, hit)))
            .collect();
        self.stats
            .peak_items
            .set(self.stats.peak_items.get().max(flat.len()));
        self.buffered = flat.into_iter();
        true
    }
}

impl Iterator for OccurrenceScan<'_> {
    type Item = (u64, crate::kmer::KmerHit);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(item) = self.buffered.next() {
                return Some(item);
            }
            if !self.refill() {
                return None;
            }
        }
    }
}

/// Convenience: total occurrences of reliable k-mers (collective), useful
/// for diagnostics and the dataset table.
pub fn reliable_occurrences(grid: &ProcGrid, triples_local: usize) -> u64 {
    grid.world().allreduce(triples_local as u64, |a, b| a + b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dna::Seq;
    use elba_comm::{Backend, Runner};

    fn store_from(grid: &ProcGrid, reads: &[&str]) -> ReadStore {
        let seqs: Vec<Seq> = reads.iter().map(|s| s.parse().expect("dna")).collect();
        ReadStore::from_replicated(grid, &seqs)
    }

    fn cfg_with(k: usize, reliable_min: u32, exchange: KmerExchange) -> KmerConfig {
        KmerConfig {
            k,
            reliable_min,
            reliable_max: u32::MAX,
            exchange,
            batch_kmers: 7, // deliberately tiny: force many flushes
            threads: 1,
        }
    }

    fn both_exchanges() -> [KmerExchange; 2] {
        [KmerExchange::Eager, KmerExchange::Streaming]
    }

    #[test]
    fn counts_match_serial_reference() {
        for exchange in both_exchanges() {
            for p in [1usize, 4, 9] {
                let out = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
                    let grid = ProcGrid::new(comm);
                    let reads = ["ACGTACGTACGT", "CGTACGTACG", "TTTTTTTTTT"];
                    let store = store_from(&grid, &reads);
                    let cfg = cfg_with(5, 1, exchange);
                    let table = count_kmers(&grid, &store, &cfg);
                    grid.world().allreduce(table.n_local() as u64, |a, b| a + b)
                });
                // serial reference
                let mut set = std::collections::HashSet::new();
                for r in ["ACGTACGTACGT", "CGTACGTACG", "TTTTTTTTTT"] {
                    let s: Seq = r.parse().expect("dna");
                    for h in canonical_kmers(&s, 5) {
                        set.insert(h.kmer);
                    }
                }
                assert!(
                    out.iter().all(|&n| n == set.len() as u64),
                    "p={p} {exchange:?}"
                );
            }
        }
    }

    #[test]
    fn reliable_band_filters_singletons() {
        for exchange in both_exchanges() {
            let out = Runner::new(Backend::InProcess).ranks(4).run(move |comm| {
                let grid = ProcGrid::new(comm);
                // reads 0/1 are identical (all their k-mers have multiplicity
                // >= 2); read 2 contributes only singletons, which the
                // reliable_min = 2 band must drop.
                let reads = ["ACGTACGTAC", "ACGTACGTAC", "GGGTTCAAGC"];
                let store = store_from(&grid, &reads);
                let cfg = cfg_with(5, 2, exchange);
                let table = count_kmers(&grid, &store, &cfg);
                let n = grid.world().allreduce(table.n_local() as u64, |a, b| a + b);
                assert_eq!(table.n_global, n);
                n
            });
            // serial reference: distinct canonical 5-mers of the repeated read
            // (each occurs >= 2 times globally), minus any that also appear in
            // the singleton read (none do, but compute it faithfully).
            let s: Seq = "ACGTACGTAC".parse().expect("dna");
            let repeated: std::collections::HashSet<u64> =
                canonical_kmers(&s, 5).into_iter().map(|h| h.kmer).collect();
            assert!(
                out.iter().all(|&n| n == repeated.len() as u64),
                "{exchange:?}: {out:?}"
            );
        }
    }

    #[test]
    fn ids_are_dense_and_unique() {
        for exchange in both_exchanges() {
            let out = Runner::new(Backend::InProcess).ranks(4).run(move |comm| {
                let grid = ProcGrid::new(comm);
                let reads = ["ACGTACGTACGTGGCCA", "GGCCATTACGAACGT"];
                let store = store_from(&grid, &reads);
                let cfg = cfg_with(4, 1, exchange);
                let table = count_kmers(&grid, &store, &cfg);
                let ids: Vec<u64> = table.local.values().copied().collect();
                (table.n_global, grid.world().allgather(ids))
            });
            let (n_global, all_ids) = &out[0];
            let mut flat: Vec<u64> = all_ids.iter().flatten().copied().collect();
            flat.sort_unstable();
            assert_eq!(flat.len() as u64, *n_global);
            assert_eq!(flat, (0..*n_global).collect::<Vec<_>>());
        }
    }

    #[test]
    fn a_triples_cover_occurrences() {
        for exchange in both_exchanges() {
            let out = Runner::new(Backend::InProcess).ranks(4).run(move |comm| {
                let grid = ProcGrid::new(comm);
                let reads = ["ACGTACGTAC", "ACGTACGTAC"];
                let store = store_from(&grid, &reads);
                let cfg = cfg_with(5, 2, exchange);
                let table = count_kmers(&grid, &store, &cfg);
                let triples = build_a_triples(&grid, &store, &table, &cfg);
                let all: Vec<(u64, u64, u32)> = grid
                    .world()
                    .allgather(
                        triples
                            .iter()
                            .map(|&(r, c, e)| (r, c, e.pos))
                            .collect::<Vec<_>>(),
                    )
                    .into_iter()
                    .flatten()
                    .collect();
                all
            });
            let all = &out[0];
            // one entry per (read, distinct canonical 5-mer)
            let s: Seq = "ACGTACGTAC".parse().expect("dna");
            let distinct: std::collections::HashSet<u64> =
                canonical_kmers(&s, 5).into_iter().map(|h| h.kmer).collect();
            assert_eq!(all.len(), 2 * distinct.len(), "{exchange:?}");
            // identical reads produce identical (column, position) sets
            let mut read0: Vec<(u64, u32)> = all
                .iter()
                .filter(|t| t.0 == 0)
                .map(|t| (t.1, t.2))
                .collect();
            let mut read1: Vec<(u64, u32)> = all
                .iter()
                .filter(|t| t.0 == 1)
                .map(|t| (t.1, t.2))
                .collect();
            read0.sort_unstable();
            read1.sort_unstable();
            assert_eq!(read0, read1);
        }
    }

    #[test]
    fn strand_flag_consistent_for_rc_read_pair() {
        let out = Runner::new(Backend::InProcess).ranks(1).run(|comm| {
            let grid = ProcGrid::new(comm);
            // chosen so no 5-mer window is the reverse complement (or a
            // duplicate) of another window: every canonical k-mer occurs
            // exactly once per read, with opposite strand flags.
            let fwd: Seq = "AAAACCCCAGT".parse().expect("dna");
            let rc = fwd.reverse_complement();
            let store = ReadStore::from_replicated(&grid, &[fwd, rc]);
            let cfg = cfg_with(5, 2, KmerExchange::Streaming);
            let table = count_kmers(&grid, &store, &cfg);
            let triples = build_a_triples(&grid, &store, &table, &cfg);
            // every shared k-mer appears in both reads with opposite strand
            let mut by_col: HashMap<u64, Vec<(u64, bool)>> = HashMap::new();
            for (r, c, e) in triples {
                by_col.entry(c).or_default().push((r, e.fwd));
            }
            by_col.values().all(|v| {
                v.len() == 2 && {
                    let f0 = v.iter().find(|x| x.0 == 0).expect("read0").1;
                    let f1 = v.iter().find(|x| x.0 == 1).expect("read1").1;
                    f0 != f1
                }
            })
        });
        assert!(out[0]);
    }

    #[test]
    fn owner_hash_spreads() {
        let p = 8;
        let mut buckets = vec![0usize; p];
        for kmer in 0..4000u64 {
            buckets[kmer_owner(kmer * 2654435761, p)] += 1;
        }
        assert!(buckets.iter().all(|&b| b > 4000 / p / 4), "{buckets:?}");
    }

    #[test]
    fn streaming_buffering_is_bounded_by_batch() {
        // The acceptance bound: peak resident exchange buffering on both
        // sides never exceeds batch_kmers, while the eager schedule's
        // grows with the dataset.
        let out = Runner::new(Backend::InProcess).ranks(4).run(|comm| {
            let grid = ProcGrid::new(comm);
            // 4 distinct-ish reads so every rank holds one.
            let reads = [
                "ACGTACGTACGTGGCCATTACGAACGTAGGT",
                "TTGCACGTACGTGGCCATTACGAACGTAGCA",
                "ACGTACGTACGTGGCCATTACGAACGTAGGT",
                "CATGGTTGCAACCGGTTACGATCCGATCAAT",
            ];
            let store = store_from(&grid, &reads);
            let batch = 5usize;
            let streaming = KmerConfig {
                exchange: KmerExchange::Streaming,
                batch_kmers: batch,
                ..cfg_with(5, 1, KmerExchange::Streaming)
            };
            let eager = KmerConfig {
                exchange: KmerExchange::Eager,
                ..streaming.clone()
            };
            let (table, count_stats) = count_kmers_with_stats(&grid, &store, &streaming);
            let (_, triple_stats) = build_a_triples_with_stats(&grid, &store, &table, &streaming);
            let (_, eager_count) = count_kmers_with_stats(&grid, &store, &eager);
            let occurrences: usize = store
                .iter()
                .map(|(_, codes)| codes.len().saturating_sub(4))
                .sum();
            (batch, count_stats, triple_stats, eager_count, occurrences)
        });
        for (batch, count_stats, triple_stats, eager_count, occurrences) in out {
            assert!(
                count_stats.peak_outgoing_items <= batch,
                "count outgoing {} > batch {batch}",
                count_stats.peak_outgoing_items
            );
            assert!(
                count_stats.peak_inbound_items <= batch,
                "count inbound {} > batch {batch}",
                count_stats.peak_inbound_items
            );
            assert!(
                triple_stats.peak_outgoing_items <= batch,
                "triples outgoing {} > batch {batch}",
                triple_stats.peak_outgoing_items
            );
            assert!(
                triple_stats.peak_inbound_items <= batch,
                "triples inbound {} > batch {batch}",
                triple_stats.peak_inbound_items
            );
            // The eager path on a rank that holds a read materializes its
            // whole outgoing exchange at once (distinct local k-mers),
            // far above the streaming bound for this workload.
            if occurrences > 0 {
                assert!(
                    eager_count.peak_outgoing_items > batch,
                    "eager outgoing {} should exceed batch {batch}",
                    eager_count.peak_outgoing_items
                );
            }
        }
    }

    #[test]
    fn threaded_scan_matches_serial() {
        // The grouped parallel k-mer scan must yield the exact
        // occurrence stream of the serial scan: identical tables and
        // identical (already canonically ordered) A triples at every
        // thread count, under both exchange schedules.
        let out = Runner::new(Backend::InProcess).ranks(4).run(|comm| {
            let grid = ProcGrid::new(comm);
            let reads = [
                "ACGTACGTACGTGGCCATTACGAACGTAGGT",
                "TTGCACGTACGTGGCCATTACGAACGTAGCA",
                "ACGTACGTACGTGGCCATTACGAACGTAGGT",
                "CATGGTTGCAACCGGTTACGATCCGATCAAT",
                "GGCCATTACGAACGTACGTACGT",
            ];
            let store = store_from(&grid, &reads);
            for exchange in both_exchanges() {
                let mut results = Vec::new();
                for threads in [1usize, 4, 7] {
                    let cfg = KmerConfig {
                        threads,
                        ..cfg_with(5, 2, exchange)
                    };
                    let table = count_kmers(&grid, &store, &cfg);
                    let triples = build_a_triples(&grid, &store, &table, &cfg);
                    let mut local: Vec<(u64, u64)> =
                        table.local.iter().map(|(&k, &v)| (k, v)).collect();
                    local.sort_unstable();
                    results.push((table.n_global, local, triples));
                }
                assert_eq!(results[0], results[1], "{exchange:?} t=4");
                assert_eq!(results[0], results[2], "{exchange:?} t=7");
            }
            true
        });
        assert!(out.iter().all(|&ok| ok));
    }

    #[test]
    fn streaming_equals_eager_end_to_end() {
        // Byte-identical KmerTable contents and triples across schedules.
        for p in [1usize, 4, 9] {
            let out = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
                let grid = ProcGrid::new(comm);
                let reads = [
                    "ACGTACGTACGTGGCCATTACGAACGT",
                    "GGCCATTACGAACGTACGTACGT",
                    "TTGCACGTACGTGGCCATTACGA",
                    "ACGTACGTACGTGGCCATTACGAACGT",
                ];
                let store = store_from(&grid, &reads);
                let mut results = Vec::new();
                for exchange in [KmerExchange::Eager, KmerExchange::Streaming] {
                    let cfg = cfg_with(5, 2, exchange);
                    let table = count_kmers(&grid, &store, &cfg);
                    let triples = build_a_triples(&grid, &store, &table, &cfg);
                    let mut local: Vec<(u64, u64)> =
                        table.local.iter().map(|(&k, &v)| (k, v)).collect();
                    local.sort_unstable();
                    results.push((table.n_global, local, triples));
                }
                assert_eq!(results[0], results[1], "rank {}", grid.world().rank());
                true
            });
            assert!(out.iter().all(|&ok| ok), "p={p}");
        }
    }
}
