//! Distributed k-mer counting and construction of the |reads|×|k-mers|
//! matrix **A** (the `KmerCounter` + `GenerateA` steps of Algorithm 1).
//!
//! Canonical k-mers are hashed to an owner rank, counted there, and
//! filtered to the *reliable* band `[reliable_min, reliable_max]`:
//! singletons are almost surely sequencing errors, ultra-frequent k-mers
//! come from repeats and would densify `C = AAᵀ` (diBELLA 2D's reliable
//! k-mer selection). Surviving k-mers get dense global column ids via an
//! exclusive scan over per-owner counts.

use std::collections::HashMap;

use elba_comm::ProcGrid;

use crate::kmer::canonical_kmers;
use crate::store::ReadStore;

/// Parameters for k-mer selection.
#[derive(Debug, Clone)]
pub struct KmerConfig {
    pub k: usize,
    /// Minimum global multiplicity for a reliable k-mer (≥2 drops errors).
    pub reliable_min: u32,
    /// Maximum multiplicity (drops repeat-induced k-mers).
    pub reliable_max: u32,
}

impl Default for KmerConfig {
    fn default() -> Self {
        KmerConfig {
            k: 31,
            reliable_min: 2,
            reliable_max: u32::MAX,
        }
    }
}

/// Owner rank of a packed k-mer (multiplicative hash).
#[inline]
pub fn kmer_owner(kmer: u64, p: usize) -> usize {
    ((kmer.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17) % p as u64) as usize
}

/// The distributed reliable-k-mer table: each rank holds the k-mers it
/// owns with their dense global column ids.
#[derive(Debug, Clone)]
pub struct KmerTable {
    pub k: usize,
    /// Total reliable k-mers across all ranks (= #columns of A).
    pub n_global: u64,
    /// Locally owned k-mer → global id.
    local: HashMap<u64, u64>,
}

impl KmerTable {
    /// Locally owned k-mer count.
    pub fn n_local(&self) -> usize {
        self.local.len()
    }

    /// Global id of a locally owned k-mer.
    pub fn id_of(&self, kmer: u64) -> Option<u64> {
        self.local.get(&kmer).copied()
    }
}

/// One entry of the A matrix: the position (and strand) of a reliable
/// k-mer occurrence within a read. This is the value BELLA's overlap
/// semiring consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AEntry {
    /// Position of the k-mer's first base within the read.
    pub pos: u32,
    /// Whether the canonical k-mer matched the read's forward strand.
    pub fwd: bool,
}

elba_comm::impl_comm_msg_pod!(AEntry);

/// Count canonical k-mers across all ranks and keep the reliable band
/// (collective). Global ids are assigned deterministically (sorted within
/// each owner, offset by exclusive scan).
pub fn count_kmers(grid: &ProcGrid, store: &ReadStore, cfg: &KmerConfig) -> KmerTable {
    let p = grid.world().size();
    // Local counting pass.
    let mut local_counts: HashMap<u64, u32> = HashMap::new();
    for (_, codes) in store.iter() {
        let seq = crate::dna::Seq::from_codes(codes.to_vec());
        for hit in canonical_kmers(&seq, cfg.k) {
            *local_counts.entry(hit.kmer).or_insert(0) += 1;
        }
    }
    // Route partial counts to owners.
    let mut outgoing: Vec<Vec<(u64, u32)>> = vec![Vec::new(); p];
    for (kmer, count) in local_counts {
        outgoing[kmer_owner(kmer, p)].push((kmer, count));
    }
    let incoming = grid.world().alltoallv(outgoing);
    let mut owned: HashMap<u64, u32> = HashMap::new();
    for batch in incoming {
        for (kmer, count) in batch {
            *owned.entry(kmer).or_insert(0) += count;
        }
    }
    // Reliable band filter.
    let mut reliable: Vec<u64> = owned
        .into_iter()
        .filter(|&(_, c)| c >= cfg.reliable_min && c <= cfg.reliable_max)
        .map(|(kmer, _)| kmer)
        .collect();
    reliable.sort_unstable();
    // Dense ids via exclusive scan of per-owner counts.
    let offset = grid.world().exscan(reliable.len() as u64, 0, |a, b| a + b);
    let n_global = grid.world().allreduce(reliable.len() as u64, |a, b| a + b);
    let local: HashMap<u64, u64> = reliable
        .into_iter()
        .enumerate()
        .map(|(i, kmer)| (kmer, offset + i as u64))
        .collect();
    KmerTable {
        k: cfg.k,
        n_global,
        local,
    }
}

/// Generate the triples of the |reads|×|k-mers| matrix A (collective):
/// `(read_id, kmer_column, AEntry)` for every reliable k-mer occurrence.
/// A read contributes one entry per distinct k-mer (first occurrence), as
/// in BELLA's sparse A construction. Triples are returned with arbitrary
/// distribution, ready for `DistMat::from_triples`.
pub fn build_a_triples(
    grid: &ProcGrid,
    store: &ReadStore,
    table: &KmerTable,
) -> Vec<(u64, u64, AEntry)> {
    let p = grid.world().size();
    // (kmer, read, pos, fwd) routed to the kmer's owner for id lookup.
    let mut outgoing: Vec<Vec<(u64, u64, u32, bool)>> = vec![Vec::new(); p];
    for (read_id, codes) in store.iter() {
        let seq = crate::dna::Seq::from_codes(codes.to_vec());
        let mut seen: HashMap<u64, ()> = HashMap::new();
        for hit in canonical_kmers(&seq, table.k) {
            if seen.insert(hit.kmer, ()).is_none() {
                outgoing[kmer_owner(hit.kmer, p)].push((hit.kmer, read_id, hit.pos, hit.fwd));
            }
        }
    }
    let incoming = grid.world().alltoallv(outgoing);
    let mut triples = Vec::new();
    for batch in incoming {
        for (kmer, read_id, pos, fwd) in batch {
            if let Some(col) = table.id_of(kmer) {
                triples.push((read_id, col, AEntry { pos, fwd }));
            }
        }
    }
    triples
}

/// Convenience: total occurrences of reliable k-mers (collective), useful
/// for diagnostics and the dataset table.
pub fn reliable_occurrences(grid: &ProcGrid, triples_local: usize) -> u64 {
    grid.world().allreduce(triples_local as u64, |a, b| a + b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dna::Seq;
    use elba_comm::Cluster;

    fn store_from(grid: &ProcGrid, reads: &[&str]) -> ReadStore {
        let seqs: Vec<Seq> = reads.iter().map(|s| s.parse().expect("dna")).collect();
        ReadStore::from_replicated(grid, &seqs)
    }

    #[test]
    fn counts_match_serial_reference() {
        for p in [1usize, 4, 9] {
            let out = Cluster::run(p, |comm| {
                let grid = ProcGrid::new(comm);
                let reads = ["ACGTACGTACGT", "CGTACGTACG", "TTTTTTTTTT"];
                let store = store_from(&grid, &reads);
                let cfg = KmerConfig {
                    k: 5,
                    reliable_min: 1,
                    reliable_max: u32::MAX,
                };
                let table = count_kmers(&grid, &store, &cfg);
                grid.world().allreduce(table.n_local() as u64, |a, b| a + b)
            });
            // serial reference
            let mut set = std::collections::HashSet::new();
            for r in ["ACGTACGTACGT", "CGTACGTACG", "TTTTTTTTTT"] {
                let s: Seq = r.parse().expect("dna");
                for h in canonical_kmers(&s, 5) {
                    set.insert(h.kmer);
                }
            }
            assert!(out.iter().all(|&n| n == set.len() as u64), "p={p}");
        }
    }

    #[test]
    fn reliable_band_filters_singletons() {
        let out = Cluster::run(4, |comm| {
            let grid = ProcGrid::new(comm);
            // reads 0/1 are identical (all their k-mers have multiplicity
            // >= 2); read 2 contributes only singletons, which the
            // reliable_min = 2 band must drop.
            let reads = ["ACGTACGTAC", "ACGTACGTAC", "GGGTTCAAGC"];
            let store = store_from(&grid, &reads);
            let cfg = KmerConfig {
                k: 5,
                reliable_min: 2,
                reliable_max: u32::MAX,
            };
            let table = count_kmers(&grid, &store, &cfg);
            let n = grid.world().allreduce(table.n_local() as u64, |a, b| a + b);
            assert_eq!(table.n_global, n);
            n
        });
        // serial reference: distinct canonical 5-mers of the repeated read
        // (each occurs >= 2 times globally), minus any that also appear in
        // the singleton read (none do, but compute it faithfully).
        let s: Seq = "ACGTACGTAC".parse().expect("dna");
        let repeated: std::collections::HashSet<u64> =
            canonical_kmers(&s, 5).into_iter().map(|h| h.kmer).collect();
        assert!(out.iter().all(|&n| n == repeated.len() as u64), "{out:?}");
    }

    #[test]
    fn ids_are_dense_and_unique() {
        let out = Cluster::run(4, |comm| {
            let grid = ProcGrid::new(comm);
            let reads = ["ACGTACGTACGTGGCCA", "GGCCATTACGAACGT"];
            let store = store_from(&grid, &reads);
            let cfg = KmerConfig {
                k: 4,
                reliable_min: 1,
                reliable_max: u32::MAX,
            };
            let table = count_kmers(&grid, &store, &cfg);
            let ids: Vec<u64> = table.local.values().copied().collect();
            (table.n_global, grid.world().allgather(ids))
        });
        let (n_global, all_ids) = &out[0];
        let mut flat: Vec<u64> = all_ids.iter().flatten().copied().collect();
        flat.sort_unstable();
        assert_eq!(flat.len() as u64, *n_global);
        assert_eq!(flat, (0..*n_global).collect::<Vec<_>>());
    }

    #[test]
    fn a_triples_cover_occurrences() {
        let out = Cluster::run(4, |comm| {
            let grid = ProcGrid::new(comm);
            let reads = ["ACGTACGTAC", "ACGTACGTAC"];
            let store = store_from(&grid, &reads);
            let cfg = KmerConfig {
                k: 5,
                reliable_min: 2,
                reliable_max: u32::MAX,
            };
            let table = count_kmers(&grid, &store, &cfg);
            let triples = build_a_triples(&grid, &store, &table);
            let all: Vec<(u64, u64, u32)> = grid
                .world()
                .allgather(
                    triples
                        .iter()
                        .map(|&(r, c, e)| (r, c, e.pos))
                        .collect::<Vec<_>>(),
                )
                .into_iter()
                .flatten()
                .collect();
            all
        });
        let all = &out[0];
        // one entry per (read, distinct canonical 5-mer)
        let s: Seq = "ACGTACGTAC".parse().expect("dna");
        let distinct: std::collections::HashSet<u64> =
            canonical_kmers(&s, 5).into_iter().map(|h| h.kmer).collect();
        assert_eq!(all.len(), 2 * distinct.len());
        // identical reads produce identical (column, position) sets
        let mut read0: Vec<(u64, u32)> = all
            .iter()
            .filter(|t| t.0 == 0)
            .map(|t| (t.1, t.2))
            .collect();
        let mut read1: Vec<(u64, u32)> = all
            .iter()
            .filter(|t| t.0 == 1)
            .map(|t| (t.1, t.2))
            .collect();
        read0.sort_unstable();
        read1.sort_unstable();
        assert_eq!(read0, read1);
    }

    #[test]
    fn strand_flag_consistent_for_rc_read_pair() {
        let out = Cluster::run(1, |comm| {
            let grid = ProcGrid::new(comm);
            // chosen so no 5-mer window is the reverse complement (or a
            // duplicate) of another window: every canonical k-mer occurs
            // exactly once per read, with opposite strand flags.
            let fwd: Seq = "AAAACCCCAGT".parse().expect("dna");
            let rc = fwd.reverse_complement();
            let store = ReadStore::from_replicated(&grid, &[fwd, rc]);
            let cfg = KmerConfig {
                k: 5,
                reliable_min: 2,
                reliable_max: u32::MAX,
            };
            let table = count_kmers(&grid, &store, &cfg);
            let triples = build_a_triples(&grid, &store, &table);
            // every shared k-mer appears in both reads with opposite strand
            let mut by_col: HashMap<u64, Vec<(u64, bool)>> = HashMap::new();
            for (r, c, e) in triples {
                by_col.entry(c).or_default().push((r, e.fwd));
            }
            by_col.values().all(|v| {
                v.len() == 2 && {
                    let f0 = v.iter().find(|x| x.0 == 0).expect("read0").1;
                    let f1 = v.iter().find(|x| x.0 == 1).expect("read1").1;
                    f0 != f1
                }
            })
        });
        assert!(out[0]);
    }

    #[test]
    fn owner_hash_spreads() {
        let p = 8;
        let mut buckets = vec![0usize; p];
        for kmer in 0..4000u64 {
            buckets[kmer_owner(kmer * 2654435761, p)] += 1;
        }
        assert!(buckets.iter().all(|&b| b > 4000 / p / 4), "{buckets:?}");
    }
}
