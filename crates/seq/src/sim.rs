//! Synthetic genome + long-read simulator.
//!
//! Substitutes for the paper's Table 2 datasets (O. sativa, C. elegans,
//! H. sapiens PacBio reads), which are far too large for a CI box. The
//! simulator preserves the parameters the algorithms are sensitive to —
//! sequencing depth, read-length distribution, per-base error rate, and
//! repeat content (repeats are what create branch vertices) — at scaled
//! genome sizes. All randomness is seeded: datasets are reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dna::Seq;

/// Parameters for the synthetic genome.
#[derive(Debug, Clone)]
pub struct GenomeConfig {
    /// Genome length in bases.
    pub length: usize,
    /// Fraction of the genome covered by pasted repeat copies.
    pub repeat_fraction: f64,
    /// Length of each repeat unit.
    pub repeat_unit_len: usize,
    /// Per-base divergence between repeat copies.
    pub repeat_divergence: f64,
    pub seed: u64,
}

impl Default for GenomeConfig {
    fn default() -> Self {
        GenomeConfig {
            length: 100_000,
            repeat_fraction: 0.05,
            repeat_unit_len: 2_000,
            repeat_divergence: 0.01,
            seed: 0xE1BA,
        }
    }
}

/// Generate a random genome with interspersed near-identical repeats.
pub fn random_genome(cfg: &GenomeConfig) -> Seq {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut codes: Vec<u8> = (0..cfg.length).map(|_| rng.gen_range(0..4u8)).collect();
    if cfg.repeat_fraction > 0.0 && cfg.repeat_unit_len > 0 && cfg.length > cfg.repeat_unit_len {
        let unit: Vec<u8> = (0..cfg.repeat_unit_len)
            .map(|_| rng.gen_range(0..4u8))
            .collect();
        let copies = ((cfg.length as f64 * cfg.repeat_fraction) / cfg.repeat_unit_len as f64).ceil()
            as usize;
        for _ in 0..copies {
            let at = rng.gen_range(0..cfg.length - cfg.repeat_unit_len);
            for (offset, &base) in unit.iter().enumerate() {
                codes[at + offset] = if rng.gen_bool(cfg.repeat_divergence) {
                    rng.gen_range(0..4u8)
                } else {
                    base
                };
            }
        }
    }
    Seq::from_codes(codes)
}

/// Where a simulated read truly came from (kept for quality evaluation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadTruth {
    /// Genome interval `[start, end)` the read was sampled from.
    pub start: usize,
    pub end: usize,
    /// Whether the read is the reverse-complement strand.
    pub rc: bool,
}

/// A simulated long read plus its provenance.
#[derive(Debug, Clone)]
pub struct SimulatedRead {
    pub seq: Seq,
    pub truth: ReadTruth,
}

/// Parameters of the read sampler (PacBio-like).
#[derive(Debug, Clone)]
pub struct ReadSimConfig {
    /// Target sequencing depth (mean coverage of each genome base).
    pub depth: f64,
    /// Mean read length in bases.
    pub mean_len: usize,
    /// Minimum read length (shorter draws are redrawn/clamped).
    pub min_len: usize,
    /// Per-base error rate (split evenly across sub/ins/del).
    pub error_rate: f64,
    pub seed: u64,
}

impl Default for ReadSimConfig {
    fn default() -> Self {
        ReadSimConfig {
            depth: 20.0,
            mean_len: 8_000,
            min_len: 1_000,
            error_rate: 0.005,
            seed: 1,
        }
    }
}

/// Draw a gamma(4)-shaped read length with the configured mean (sum of
/// four exponentials — long-read length distributions are right-skewed).
fn draw_length(rng: &mut StdRng, cfg: &ReadSimConfig) -> usize {
    let scale = cfg.mean_len as f64 / 4.0;
    let mut len = 0.0;
    for _ in 0..4 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        len += -u.ln() * scale;
    }
    (len as usize).max(cfg.min_len)
}

/// Apply the error model to a perfect read.
fn corrupt(rng: &mut StdRng, perfect: &[u8], error_rate: f64) -> Vec<u8> {
    if error_rate <= 0.0 {
        return perfect.to_vec();
    }
    let p_each = error_rate / 3.0;
    let mut out = Vec::with_capacity(perfect.len() + 8);
    for &base in perfect {
        let roll: f64 = rng.gen();
        if roll < p_each {
            // substitution: any of the three other bases
            let sub = (base + rng.gen_range(1..4u8)) % 4;
            out.push(sub);
        } else if roll < 2.0 * p_each {
            // insertion before the base
            out.push(rng.gen_range(0..4u8));
            out.push(base);
        } else if roll < 3.0 * p_each {
            // deletion: skip the base
        } else {
            out.push(base);
        }
    }
    out
}

/// Sample reads to the configured depth, uniformly over the genome, with
/// random strand and the error model applied.
pub fn simulate_reads(genome: &Seq, cfg: &ReadSimConfig) -> Vec<SimulatedRead> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let glen = genome.len();
    let mut reads = Vec::new();
    let mut bases_emitted = 0usize;
    let target = (glen as f64 * cfg.depth) as usize;
    while bases_emitted < target {
        let len = draw_length(&mut rng, cfg).min(glen);
        let start = rng.gen_range(0..=glen - len);
        let end = start + len;
        let rc = rng.gen_bool(0.5);
        let mut perfect = genome.codes()[start..end].to_vec();
        if rc {
            perfect.reverse();
            for b in &mut perfect {
                *b = crate::dna::complement(*b);
            }
        }
        let noisy = corrupt(&mut rng, &perfect, cfg.error_rate);
        bases_emitted += noisy.len();
        reads.push(SimulatedRead {
            seq: Seq::from_codes(noisy),
            truth: ReadTruth { start, end, rc },
        });
    }
    reads
}

/// A named dataset: scaled stand-in for one row of the paper's Table 2.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    pub name: &'static str,
    pub genome: GenomeConfig,
    pub reads: ReadSimConfig,
    /// k-mer length the paper uses for this dataset.
    pub k: usize,
    /// x-drop threshold the paper uses for this dataset.
    pub xdrop: i32,
}

impl DatasetSpec {
    /// *C. elegans*-like: depth 40, 0.5 % error (paper: 100 Mb genome,
    /// 14.5 kb reads). `scale = 1` gives a 100 kb genome; read lengths are
    /// scaled ~7× down so the genome:read ratio stays assembly-like
    /// (otherwise nearly every read is contained in a longer one).
    pub fn celegans_like(scale: f64, seed: u64) -> Self {
        DatasetSpec {
            name: "C.elegans-like",
            genome: GenomeConfig {
                length: (100_000.0 * scale) as usize,
                repeat_fraction: 0.04,
                repeat_unit_len: 800,
                repeat_divergence: 0.01,
                seed,
            },
            reads: ReadSimConfig {
                depth: 40.0,
                mean_len: 2_000,
                min_len: 800,
                error_rate: 0.005,
                seed: seed ^ 0x9E37,
            },
            k: 31,
            xdrop: 15,
        }
    }

    /// *O. sativa*-like: depth 30, 0.5 % error, longer reads, more repeats
    /// (paper: 500 Mb; `scale = 1` gives 150 kb).
    pub fn osativa_like(scale: f64, seed: u64) -> Self {
        DatasetSpec {
            name: "O.sativa-like",
            genome: GenomeConfig {
                length: (150_000.0 * scale) as usize,
                repeat_fraction: 0.08,
                repeat_unit_len: 1_000,
                repeat_divergence: 0.01,
                seed,
            },
            reads: ReadSimConfig {
                depth: 30.0,
                mean_len: 2_400,
                min_len: 1_000,
                error_rate: 0.005,
                seed: seed ^ 0x9E37,
            },
            k: 31,
            xdrop: 15,
        }
    }

    /// *H. sapiens*-like: depth 10, 15 % error (paper: 3.2 Gb;
    /// `scale = 1` gives 200 kb). Exercises the high-error path with the
    /// paper's `k = 17`, `x = 7`.
    pub fn hsapiens_like(scale: f64, seed: u64) -> Self {
        DatasetSpec {
            name: "H.sapiens-like",
            genome: GenomeConfig {
                length: (200_000.0 * scale) as usize,
                repeat_fraction: 0.10,
                repeat_unit_len: 1_000,
                repeat_divergence: 0.02,
                seed,
            },
            reads: ReadSimConfig {
                depth: 10.0,
                mean_len: 1_800,
                min_len: 800,
                error_rate: 0.15,
                seed: seed ^ 0x9E37,
            },
            k: 17,
            xdrop: 7,
        }
    }

    /// Materialize the dataset.
    pub fn generate(&self) -> (Seq, Vec<SimulatedRead>) {
        let genome = random_genome(&self.genome);
        let reads = simulate_reads(&genome, &self.reads);
        (genome, reads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genome_has_requested_length() {
        let g = random_genome(&GenomeConfig {
            length: 5_000,
            ..Default::default()
        });
        assert_eq!(g.len(), 5_000);
    }

    #[test]
    fn genome_is_reproducible() {
        let cfg = GenomeConfig {
            length: 2_000,
            ..Default::default()
        };
        assert_eq!(random_genome(&cfg), random_genome(&cfg));
        let other = GenomeConfig { seed: 99, ..cfg };
        assert_ne!(random_genome(&other), random_genome(&cfg));
    }

    #[test]
    fn reads_reach_depth() {
        let g = random_genome(&GenomeConfig {
            length: 20_000,
            ..Default::default()
        });
        let cfg = ReadSimConfig {
            depth: 15.0,
            mean_len: 2_000,
            min_len: 500,
            ..Default::default()
        };
        let reads = simulate_reads(&g, &cfg);
        let total: usize = reads.iter().map(|r| r.seq.len()).sum();
        assert!(total >= 15 * 20_000, "total={total}");
        assert!(total < 17 * 20_000, "overshoot bounded by one read");
    }

    #[test]
    fn error_free_reads_match_genome() {
        let g = random_genome(&GenomeConfig {
            length: 10_000,
            ..Default::default()
        });
        let cfg = ReadSimConfig {
            depth: 3.0,
            error_rate: 0.0,
            mean_len: 1_000,
            min_len: 300,
            seed: 7,
        };
        for read in simulate_reads(&g, &cfg) {
            let truth = read.truth;
            let mut want = g.substring(truth.start, truth.end);
            if truth.rc {
                want = want.reverse_complement();
            }
            assert_eq!(read.seq, want);
        }
    }

    #[test]
    fn error_rate_roughly_matches() {
        // With only substitutions/ins/del at 10%, edit distance per base
        // should land near 0.1; check emitted length deviation is small
        // (ins and del balance out) and content differs.
        let g = random_genome(&GenomeConfig {
            length: 50_000,
            ..Default::default()
        });
        let cfg = ReadSimConfig {
            depth: 2.0,
            error_rate: 0.10,
            mean_len: 5_000,
            min_len: 1_000,
            seed: 3,
        };
        let reads = simulate_reads(&g, &cfg);
        let (mut emitted, mut sampled) = (0usize, 0usize);
        for r in &reads {
            emitted += r.seq.len();
            sampled += r.truth.end - r.truth.start;
        }
        let ratio = emitted as f64 / sampled as f64;
        assert!((ratio - 1.0).abs() < 0.02, "ins/del balance, got {ratio}");
    }

    #[test]
    fn read_lengths_respect_min() {
        let g = random_genome(&GenomeConfig {
            length: 30_000,
            ..Default::default()
        });
        let cfg = ReadSimConfig {
            depth: 5.0,
            mean_len: 2_000,
            min_len: 800,
            ..Default::default()
        };
        assert!(simulate_reads(&g, &cfg)
            .iter()
            .all(|r| r.truth.end - r.truth.start >= 800));
    }

    #[test]
    fn presets_have_paper_parameters() {
        let ce = DatasetSpec::celegans_like(1.0, 0);
        assert_eq!((ce.k, ce.xdrop), (31, 15));
        assert!((ce.reads.depth - 40.0).abs() < f64::EPSILON);
        let hs = DatasetSpec::hsapiens_like(1.0, 0);
        assert_eq!((hs.k, hs.xdrop), (17, 7));
        assert!((hs.reads.error_rate - 0.15).abs() < f64::EPSILON);
        assert!(
            hs.genome.length / hs.reads.mean_len >= 50,
            "genome:read ratio"
        );
        let os = DatasetSpec::osativa_like(1.0, 0);
        assert!((os.reads.depth - 30.0).abs() < f64::EPSILON);
    }

    #[test]
    fn dataset_generates() {
        let (genome, reads) = DatasetSpec::celegans_like(0.1, 42).generate();
        assert_eq!(genome.len(), 10_000);
        assert!(!reads.is_empty());
    }
}
