//! DNA alphabet and sequence type.
//!
//! Bases are stored one code per byte (`A=0, C=1, G=2, T=3`); Watson–Crick
//! complement is `3 − code`. [`Seq::paper_slice`] implements the inclusive
//! indexing convention of the paper's §4.4: `l[i:j]` with `i ≤ j` is the
//! substring `(l[i], …, l[j])`, and `l[j:i]` with `j > i` is its
//! *reverse-complement* substring `(l[j]ᶜ, l[j−1]ᶜ, …, l[i]ᶜ)` — the
//! operation local assembly uses to stitch contigs across strand flips.

/// One nucleotide code: `A=0, C=1, G=2, T=3`.
pub type Base = u8;

/// Watson–Crick complement of a base code.
#[inline]
pub fn complement(b: Base) -> Base {
    debug_assert!(b < 4);
    3 - b
}

/// ASCII letter for a base code.
#[inline]
pub fn base_to_char(b: Base) -> char {
    match b {
        0 => 'A',
        1 => 'C',
        2 => 'G',
        3 => 'T',
        _ => panic!("invalid base code {b}"),
    }
}

/// Base code for an ASCII letter (case-insensitive). `None` for ambiguity
/// codes (N etc.).
#[inline]
pub fn char_to_base(c: u8) -> Option<Base> {
    match c {
        b'A' | b'a' => Some(0),
        b'C' | b'c' => Some(1),
        b'G' | b'g' => Some(2),
        b'T' | b't' => Some(3),
        _ => None,
    }
}

/// A DNA sequence (read, contig, or genome).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Seq {
    codes: Vec<Base>,
}

impl Seq {
    pub fn new() -> Self {
        Seq { codes: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        Seq {
            codes: Vec::with_capacity(cap),
        }
    }

    /// From base codes (each must be < 4).
    pub fn from_codes(codes: Vec<Base>) -> Self {
        debug_assert!(codes.iter().all(|&b| b < 4));
        Seq { codes }
    }

    /// Parse from ASCII; ambiguity codes are replaced by `A` (as common
    /// assemblers do when ingesting simulated data without Ns).
    pub fn from_ascii(s: &[u8]) -> Self {
        Seq {
            codes: s.iter().map(|&c| char_to_base(c).unwrap_or(0)).collect(),
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    #[inline]
    pub fn get(&self, i: usize) -> Base {
        self.codes[i]
    }

    #[inline]
    pub fn codes(&self) -> &[Base] {
        &self.codes
    }

    #[inline]
    pub fn push(&mut self, b: Base) {
        debug_assert!(b < 4);
        self.codes.push(b);
    }

    /// Append another sequence (the `⊕` of the paper's contig equation).
    pub fn extend_from(&mut self, other: &Seq) {
        self.codes.extend_from_slice(&other.codes);
    }

    /// Reverse complement of the whole sequence.
    pub fn reverse_complement(&self) -> Seq {
        Seq {
            codes: self.codes.iter().rev().map(|&b| complement(b)).collect(),
        }
    }

    /// Inclusive paper slice: forward `l[a:b]` when `a ≤ b`, or the
    /// reverse-complement slice `l[a:b]` (reading from `a` down to `b`,
    /// complemented) when `a > b`. Bounds are inclusive on both ends.
    pub fn paper_slice(&self, a: usize, b: usize) -> Seq {
        if a <= b {
            Seq {
                codes: self.codes[a..=b].to_vec(),
            }
        } else {
            Seq {
                codes: (b..=a).rev().map(|i| complement(self.codes[i])).collect(),
            }
        }
    }

    /// Contiguous subsequence `start..end` (exclusive end, forward strand).
    pub fn substring(&self, start: usize, end: usize) -> Seq {
        Seq {
            codes: self.codes[start..end].to_vec(),
        }
    }
}

impl std::fmt::Display for Seq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for &b in &self.codes {
            write!(f, "{}", base_to_char(b))?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for Seq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.len() <= 60 {
            write!(f, "Seq(\"{self}\")")
        } else {
            write!(
                f,
                "Seq(len={}, \"{}…\")",
                self.len(),
                self.paper_slice(0, 29)
            )
        }
    }
}

impl std::str::FromStr for Seq {
    type Err = std::convert::Infallible;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(Seq::from_ascii(s.as_bytes()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> Seq {
        s.parse().expect("valid")
    }

    #[test]
    fn round_trip_ascii() {
        let s = seq("ACGTACGT");
        assert_eq!(s.to_string(), "ACGTACGT");
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn complement_pairs() {
        // A<->T and C<->G, as stated in the paper's background section.
        assert_eq!(
            base_to_char(complement(char_to_base(b'A').expect("base"))),
            'T'
        );
        assert_eq!(
            base_to_char(complement(char_to_base(b'C').expect("base"))),
            'G'
        );
    }

    #[test]
    fn paper_background_example() {
        // §2: "Given a string v = ATTCG, its reverse complement is CGAAT."
        assert_eq!(seq("ATTCG").reverse_complement().to_string(), "CGAAT");
    }

    #[test]
    fn reverse_complement_involution() {
        let s = seq("GATTACAGATTACA");
        assert_eq!(s.reverse_complement().reverse_complement(), s);
    }

    #[test]
    fn forward_paper_slice_is_inclusive() {
        // Fig. 3: l_u = AGAACT, overlap is l_u[2:5] = AACT.
        assert_eq!(seq("AGAACT").paper_slice(2, 5).to_string(), "AACT");
        // prefix l_0[0:pre(e0)] with pre = 1 -> "AG"
        assert_eq!(seq("AGAACT").paper_slice(0, 1).to_string(), "AG");
    }

    #[test]
    fn reverse_paper_slice_is_rc() {
        // Fig. 3 rc case: l_v^c = CTTCAGTT (rc of l1 = AACTGAAG);
        // l_v^c[7:4] must equal AACT (the overlap on the rc strand).
        let l1c = seq("AACTGAAG").reverse_complement();
        assert_eq!(l1c.to_string(), "CTTCAGTT");
        assert_eq!(l1c.paper_slice(7, 4).to_string(), "AACT");
    }

    #[test]
    fn fig3_contig_concatenation() {
        // l_r[α:pre(e0)] ⊕ l_c1[post(e0):pre(e1)] ⊕ l_r'[post(e1):β]
        // with l0=AGAACT (pre=1), l1=AACTGAAG (post=0, pre=4),
        // l2=TGAAGAA (post=2, β=|l2|-1) must rebuild the merged contig.
        let l0 = seq("AGAACT");
        let l1 = seq("AACTGAAG");
        let l2 = seq("TGAAGAA");
        let mut contig = l0.paper_slice(0, 1);
        contig.extend_from(&l1.paper_slice(0, 4));
        contig.extend_from(&l2.paper_slice(2, l2.len() - 1));
        assert_eq!(contig.to_string(), "AGAACTGAAGAA");
    }

    #[test]
    fn single_base_slice() {
        assert_eq!(seq("ACGT").paper_slice(2, 2).to_string(), "G");
    }

    #[test]
    fn substring_exclusive() {
        assert_eq!(seq("ACGTAC").substring(1, 4).to_string(), "CGT");
    }

    #[test]
    fn ambiguity_maps_to_a() {
        assert_eq!(seq("ANGT").to_string(), "AAGT");
    }
}
