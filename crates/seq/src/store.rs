//! Distributed read store.
//!
//! Read sequences are "stored as distributed char arrays" (§4.3): each
//! rank keeps its reads concatenated in one packed code buffer with an
//! offset table, so a subsequence lookup during local assembly reads
//! straight out of the buffer — "we can simply use the offsets already
//! computed, which tell us where each read is in the buffer" (§4.4).
//!
//! Initially reads are block-distributed with the same [`Layout2D`]
//! chunking as distributed vectors, so read `i` is co-located with matrix
//! row `i`. After contig load balancing, [`ReadStore::exchange`]
//! redistributes sequences to their contig owners, reproducing the
//! paper's large-message handling: a message whose length exceeds the
//! MPI count limit (2³¹−1) is shipped as a single *contiguous-datatype*
//! block rather than element-by-element.

use std::collections::HashMap;

use elba_comm::{ProcGrid, Rank};
use elba_sparse::layout::Layout2D;

use crate::dna::Seq;

/// Tag space for the sequence exchange.
const SEQ_TAG: u64 = 0x00_5E9E;

/// The MPI maximum element count a single send can carry.
pub const MPI_COUNT_LIMIT: usize = (1 << 31) - 1;

/// A buffer wrapped as one "contiguous datatype" element, mirroring the
/// paper's workaround for the 2³¹−1 count limit: the unit size equals the
/// whole buffer, so the message carries exactly one element.
struct ContiguousBlock {
    data: Vec<u8>,
}

impl elba_comm::CommMsg for ContiguousBlock {
    fn nbytes(&self) -> usize {
        8 + self.data.len()
    }

    fn wire_encode(&self, out: &mut Vec<u8>) {
        self.data.wire_encode(out);
    }

    fn wire_decode(
        r: &mut elba_comm::transport::wire::WireReader<'_>,
    ) -> Result<Self, elba_comm::transport::wire::WireError> {
        Ok(ContiguousBlock {
            data: Vec::<u8>::wire_decode(r)?,
        })
    }
}

/// Packed, offset-indexed collection of reads on one rank.
#[derive(Debug, Clone)]
pub struct ReadStore {
    n_global: usize,
    /// Global ids of locally held reads.
    ids: Vec<u64>,
    /// `offsets[i]..offsets[i+1]` spans read `i`'s codes in `buf`.
    offsets: Vec<usize>,
    buf: Vec<u8>,
    index: HashMap<u64, usize>,
}

impl ReadStore {
    /// Build from a replicated read set: every rank passes the same slice
    /// and keeps the chunk the vector layout assigns to it.
    pub fn from_replicated(grid: &ProcGrid, reads: &[Seq]) -> Self {
        let layout = Layout2D::new(reads.len(), grid.q());
        let range = layout.chunk_range(grid.myrow(), grid.mycol());
        let mut store = ReadStore::empty(reads.len());
        for g in range {
            store.push(g as u64, reads[g].codes());
        }
        store
    }

    /// An empty store for `n_global` total reads.
    pub fn empty(n_global: usize) -> Self {
        ReadStore {
            n_global,
            ids: Vec::new(),
            offsets: vec![0],
            buf: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Append a read's codes under a global id.
    pub fn push(&mut self, id: u64, codes: &[u8]) {
        debug_assert!(!self.index.contains_key(&id), "read {id} already stored");
        self.index.insert(id, self.ids.len());
        self.ids.push(id);
        self.buf.extend_from_slice(codes);
        self.offsets.push(self.buf.len());
    }

    /// Total reads across all ranks.
    #[inline]
    pub fn n_global(&self) -> usize {
        self.n_global
    }

    /// Reads held locally.
    #[inline]
    pub fn n_local(&self) -> usize {
        self.ids.len()
    }

    /// Global ids of locally held reads.
    #[inline]
    pub fn local_ids(&self) -> &[u64] {
        &self.ids
    }

    /// Total bases held locally.
    #[inline]
    pub fn local_bases(&self) -> usize {
        self.buf.len()
    }

    /// Codes of a locally held read, by global id.
    pub fn get(&self, id: u64) -> Option<&[u8]> {
        self.index
            .get(&id)
            .map(|&slot| &self.buf[self.offsets[slot]..self.offsets[slot + 1]])
    }

    /// Length of a locally held read.
    pub fn read_len(&self, id: u64) -> Option<usize> {
        self.index
            .get(&id)
            .map(|&slot| self.offsets[slot + 1] - self.offsets[slot])
    }

    /// Paper-style inclusive subsequence `l[a:b]` of a local read,
    /// extracted directly from the packed buffer (reverse-complement when
    /// `a > b`). Panics if the read is not local.
    pub fn subsequence(&self, id: u64, a: usize, b: usize) -> Seq {
        let codes = self
            .get(id)
            .unwrap_or_else(|| panic!("read {id} not stored locally"));
        if a <= b {
            Seq::from_codes(codes[a..=b].to_vec())
        } else {
            Seq::from_codes(
                (b..=a)
                    .rev()
                    .map(|i| crate::dna::complement(codes[i]))
                    .collect(),
            )
        }
    }

    /// Iterate locally held reads as `(global_id, codes)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[u8])> {
        self.ids
            .iter()
            .enumerate()
            .map(move |(slot, &id)| (id, &self.buf[self.offsets[slot]..self.offsets[slot + 1]]))
    }

    /// Redistribute reads: `dest` gives each locally held read's target
    /// ranks (a read may be replicated to several, e.g. when a contig
    /// boundary needs it). Messages larger than `count_limit` take the
    /// contiguous-datatype path. Collective. Returns the new store.
    pub fn exchange(
        &self,
        grid: &ProcGrid,
        mut dest: impl FnMut(u64) -> Vec<Rank>,
        count_limit: usize,
    ) -> ReadStore {
        let p = grid.world().size();
        // Header: (id, len) per read, per destination.
        let mut headers: Vec<Vec<(u64, u64)>> = vec![Vec::new(); p];
        let mut payload: Vec<Vec<u8>> = vec![Vec::new(); p];
        for (id, codes) in self.iter() {
            for target in dest(id) {
                headers[target].push((id, codes.len() as u64));
                payload[target].extend_from_slice(codes);
            }
        }
        let incoming_headers = grid.world().alltoallv(headers);
        // Ship each destination's packed buffer; one message each, using
        // the contiguous-datatype wrapper when over the count limit.
        for (dst, buf) in payload.into_iter().enumerate() {
            if buf.len() > count_limit {
                grid.world()
                    .send(dst, SEQ_TAG, ContiguousBlock { data: buf });
            } else {
                grid.world().send(dst, SEQ_TAG + 1, buf);
            }
        }
        let mut store = ReadStore::empty(self.n_global);
        for (src, headers) in incoming_headers.into_iter().enumerate() {
            let expect: usize = headers.iter().map(|&(_, len)| len as usize).sum();
            let buf: Vec<u8> = if expect > count_limit {
                grid.world().recv::<ContiguousBlock>(src, SEQ_TAG).data
            } else {
                grid.world().recv::<Vec<u8>>(src, SEQ_TAG + 1)
            };
            debug_assert_eq!(buf.len(), expect);
            let mut cursor = 0usize;
            for (id, len) in headers {
                let len = len as usize;
                store.push(id, &buf[cursor..cursor + len]);
                cursor += len;
            }
        }
        store
    }

    /// The initial owner rank of read `id` under the block layout used
    /// before contig redistribution.
    pub fn initial_owner(n_global: usize, q: usize, id: u64) -> Rank {
        Layout2D::new(n_global, q).owner_rank(id as usize)
    }

    /// The sequence analogue of the Fig. 2 vector exchange: starting from
    /// the initial block distribution, return a store holding every read
    /// whose id falls in this rank's matrix block *row range or column
    /// range* (what the alignment stage needs to process the local block
    /// of `C`). Implemented as an allgather over the grid-row communicator
    /// followed by a point-to-point swap with the transposed rank.
    /// Collective; requires the store to still be block-distributed.
    pub fn fetch_block_aligned(&self, grid: &ProcGrid) -> ReadStore {
        // Pack local reads once.
        let local_pack: (Vec<u64>, Vec<u64>, Vec<u8>) = {
            let mut ids = Vec::with_capacity(self.n_local());
            let mut lens = Vec::with_capacity(self.n_local());
            let mut buf = Vec::with_capacity(self.local_bases());
            for (id, codes) in self.iter() {
                ids.push(id);
                lens.push(codes.len() as u64);
                buf.extend_from_slice(codes);
            }
            (ids, lens, buf)
        };
        // Row allgather: grid row i's chunks cover block-row range i.
        let row_packs = grid.row().allgather(local_pack);
        // Concatenate the row collection for the transpose swap.
        let mut row_ids = Vec::new();
        let mut row_lens = Vec::new();
        let mut row_buf = Vec::new();
        for (ids, lens, buf) in &row_packs {
            row_ids.extend_from_slice(ids);
            row_lens.extend_from_slice(lens);
            row_buf.extend_from_slice(buf);
        }
        let col_pack = if grid.is_diagonal() {
            None
        } else {
            let partner = grid.transpose_rank();
            grid.world().send(
                partner,
                SEQ_TAG + 2,
                (row_ids.clone(), row_lens.clone(), row_buf.clone()),
            );
            Some(
                grid.world()
                    .recv::<(Vec<u64>, Vec<u64>, Vec<u8>)>(partner, SEQ_TAG + 2),
            )
        };
        let mut store = ReadStore::empty(self.n_global);
        let mut ingest = |ids: &[u64], lens: &[u64], buf: &[u8]| {
            let mut cursor = 0usize;
            for (&id, &len) in ids.iter().zip(lens) {
                let len = len as usize;
                if store.get(id).is_none() {
                    store.push(id, &buf[cursor..cursor + len]);
                }
                cursor += len;
            }
        };
        ingest(&row_ids, &row_lens, &row_buf);
        if let Some((ids, lens, buf)) = col_pack {
            ingest(&ids, &lens, &buf);
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elba_comm::{Backend, Runner};

    fn reads(n: usize) -> Vec<Seq> {
        (0..n)
            .map(|i| {
                let len = 10 + (i % 5);
                Seq::from_codes((0..len).map(|j| ((i + j) % 4) as u8).collect())
            })
            .collect()
    }

    #[test]
    fn replicated_construction_partitions() {
        let out = Runner::new(Backend::InProcess).ranks(4).run(|comm| {
            let grid = ProcGrid::new(comm);
            let all = reads(23);
            let store = ReadStore::from_replicated(&grid, &all);
            let ok = store
                .iter()
                .all(|(id, codes)| codes == all[id as usize].codes());
            (store.n_local(), ok)
        });
        let total: usize = out.iter().map(|&(n, _)| n).sum();
        assert_eq!(total, 23);
        assert!(out.iter().all(|&(_, ok)| ok));
    }

    #[test]
    fn subsequence_forward_and_rc() {
        let out = Runner::new(Backend::InProcess).ranks(1).run(|comm| {
            let grid = ProcGrid::new(comm);
            let all = vec!["AGAACT".parse::<Seq>().expect("dna")];
            let store = ReadStore::from_replicated(&grid, &all);
            (
                store.subsequence(0, 2, 5).to_string(),
                store.subsequence(0, 5, 2).to_string(),
            )
        });
        assert_eq!(out[0].0, "AACT");
        // reverse complement of AACT read backwards from index 5 to 2
        assert_eq!(out[0].1, "AGTT");
    }

    #[test]
    fn exchange_moves_reads_to_targets() {
        let out = Runner::new(Backend::InProcess).ranks(4).run(|comm| {
            let grid = ProcGrid::new(comm);
            let all = reads(10);
            let store = ReadStore::from_replicated(&grid, &all);
            // send every read to rank (id % 4)
            let moved = store.exchange(&grid, |id| vec![(id % 4) as usize], MPI_COUNT_LIMIT);
            let all = reads(10);
            let ok = moved.iter().all(|(id, codes)| {
                id % 4 == grid.world().rank() as u64 && codes == all[id as usize].codes()
            });
            (moved.n_local(), ok)
        });
        assert!(out.iter().all(|&(_, ok)| ok));
        let total: usize = out.iter().map(|&(n, _)| n).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn exchange_can_replicate_reads() {
        let out = Runner::new(Backend::InProcess).ranks(4).run(|comm| {
            let grid = ProcGrid::new(comm);
            let all = reads(4);
            let store = ReadStore::from_replicated(&grid, &all);
            // replicate read 0 everywhere, others stay at initial owner
            let moved = store.exchange(
                &grid,
                |id| {
                    if id == 0 {
                        (0..4).collect()
                    } else {
                        vec![ReadStore::initial_owner(4, grid.q(), id)]
                    }
                },
                MPI_COUNT_LIMIT,
            );
            moved.get(0).is_some()
        });
        assert!(out.iter().all(|&ok| ok));
    }

    #[test]
    fn large_message_contiguous_path() {
        // Force the contiguous-datatype path with an artificially tiny
        // count limit; content must survive unchanged.
        let out = Runner::new(Backend::InProcess).ranks(4).run(|comm| {
            let grid = ProcGrid::new(comm);
            let all = reads(12);
            let store = ReadStore::from_replicated(&grid, &all);
            let moved = store.exchange(&grid, |id| vec![(id % 4) as usize], 4);
            let all = reads(12);
            let ok = moved
                .iter()
                .all(|(id, codes)| codes == all[id as usize].codes());
            ok
        });
        assert!(out.iter().all(|&ok| ok));
    }

    #[test]
    fn initial_owner_matches_layout() {
        let layout = Layout2D::new(17, 2);
        for id in 0..17u64 {
            assert_eq!(
                ReadStore::initial_owner(17, 2, id),
                layout.owner_rank(id as usize)
            );
        }
    }

    #[test]
    fn fetch_block_aligned_covers_row_and_col_ranges() {
        for p in [1usize, 4, 9] {
            let out = Runner::new(Backend::InProcess).ranks(p).run(move |comm| {
                let grid = ProcGrid::new(comm);
                let all = reads(29);
                let store = ReadStore::from_replicated(&grid, &all);
                let fetched = store.fetch_block_aligned(&grid);
                let layout = Layout2D::new(29, grid.q());
                let row_range = layout.block_range(grid.myrow());
                let col_range = layout.block_range(grid.mycol());
                let covered = row_range
                    .chain(col_range)
                    .all(|g| fetched.get(g as u64) == Some(all[g].codes()));
                covered
            });
            assert!(out.iter().all(|&ok| ok), "p={p}");
        }
    }

    #[test]
    fn read_len_and_missing() {
        let mut store = ReadStore::empty(5);
        store.push(3, &[0, 1, 2]);
        assert_eq!(store.read_len(3), Some(3));
        assert_eq!(store.read_len(0), None);
        assert!(store.get(4).is_none());
    }
}
