//! GFA 1.0 export — the interchange format real assemblers emit so that
//! downstream tools (Bandage, gfatools, scaffolders) can inspect the
//! assembly graph. ELBA-RS writes its string graph as `S` (segment) and
//! `L` (link) lines and its contig walks as `P` (path) lines.

use std::collections::HashMap;
use std::io::{self, Write};

use crate::dna::Seq;

/// One segment (a read or contig) of a GFA graph.
#[derive(Debug, Clone)]
pub struct GfaSegment {
    pub name: String,
    pub seq: Seq,
}

/// One link: `from` end overlaps `to` start, with orientations and the
/// overlap length (emitted as a `<n>M` CIGAR).
#[derive(Debug, Clone)]
pub struct GfaLink {
    pub from: String,
    pub from_reverse: bool,
    pub to: String,
    pub to_reverse: bool,
    pub overlap: usize,
}

/// One path: an ordered oriented walk over segments (a contig).
#[derive(Debug, Clone)]
pub struct GfaPath {
    pub name: String,
    /// (segment name, reverse?) steps.
    pub steps: Vec<(String, bool)>,
}

/// A string-graph snapshot ready for GFA serialization.
#[derive(Debug, Clone, Default)]
pub struct GfaGraph {
    pub segments: Vec<GfaSegment>,
    pub links: Vec<GfaLink>,
    pub paths: Vec<GfaPath>,
}

impl GfaGraph {
    pub fn new() -> Self {
        GfaGraph::default()
    }

    pub fn add_segment(&mut self, name: impl Into<String>, seq: Seq) {
        self.segments.push(GfaSegment {
            name: name.into(),
            seq,
        });
    }

    pub fn add_link(
        &mut self,
        from: impl Into<String>,
        from_reverse: bool,
        to: impl Into<String>,
        to_reverse: bool,
        overlap: usize,
    ) {
        self.links.push(GfaLink {
            from: from.into(),
            from_reverse,
            to: to.into(),
            to_reverse,
            overlap,
        });
    }

    pub fn add_path(&mut self, name: impl Into<String>, steps: Vec<(String, bool)>) {
        self.paths.push(GfaPath {
            name: name.into(),
            steps,
        });
    }

    /// Serialize as GFA 1.0.
    pub fn write<W: Write>(&self, mut out: W) -> io::Result<()> {
        writeln!(out, "H\tVN:Z:1.0")?;
        for segment in &self.segments {
            writeln!(
                out,
                "S\t{}\t{}\tLN:i:{}",
                segment.name,
                segment.seq,
                segment.seq.len()
            )?;
        }
        for link in &self.links {
            writeln!(
                out,
                "L\t{}\t{}\t{}\t{}\t{}M",
                link.from,
                if link.from_reverse { '-' } else { '+' },
                link.to,
                if link.to_reverse { '-' } else { '+' },
                link.overlap
            )?;
        }
        for path in &self.paths {
            let steps: Vec<String> = path
                .steps
                .iter()
                .map(|(name, reverse)| format!("{}{}", name, if *reverse { '-' } else { '+' }))
                .collect();
            writeln!(out, "P\t{}\t{}\t*", path.name, steps.join(","))?;
        }
        Ok(())
    }

    /// Parse a GFA 1.0 document (segments, links, paths; other record
    /// types are ignored). Round-trips [`GfaGraph::write`].
    pub fn parse(text: &str) -> io::Result<GfaGraph> {
        let mut graph = GfaGraph::new();
        for (lineno, line) in text.lines().enumerate() {
            let mut fields = line.split('\t');
            let bad = |what: &str| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("GFA line {}: {what}", lineno + 1),
                )
            };
            match fields.next() {
                Some("S") => {
                    let name = fields.next().ok_or_else(|| bad("missing segment name"))?;
                    let seq = fields.next().ok_or_else(|| bad("missing sequence"))?;
                    graph.add_segment(name, Seq::from_ascii(seq.as_bytes()));
                }
                Some("L") => {
                    let from = fields.next().ok_or_else(|| bad("missing from"))?.to_owned();
                    let from_reverse =
                        fields.next().ok_or_else(|| bad("missing from orient"))? == "-";
                    let to = fields.next().ok_or_else(|| bad("missing to"))?.to_owned();
                    let to_reverse = fields.next().ok_or_else(|| bad("missing to orient"))? == "-";
                    let cigar = fields.next().unwrap_or("0M");
                    let overlap = cigar.trim_end_matches('M').parse::<usize>().unwrap_or(0);
                    graph.links.push(GfaLink {
                        from,
                        from_reverse,
                        to,
                        to_reverse,
                        overlap,
                    });
                }
                Some("P") => {
                    let name = fields
                        .next()
                        .ok_or_else(|| bad("missing path name"))?
                        .to_owned();
                    let steps_field = fields.next().ok_or_else(|| bad("missing steps"))?;
                    let steps = steps_field
                        .split(',')
                        .filter(|s| !s.is_empty())
                        .map(|s| {
                            let reverse = s.ends_with('-');
                            (s.trim_end_matches(['+', '-']).to_owned(), reverse)
                        })
                        .collect();
                    graph.paths.push(GfaPath { name, steps });
                }
                _ => {}
            }
        }
        Ok(graph)
    }

    /// Basic structural validation: every link/path endpoint must name an
    /// existing segment. Returns the offending names.
    pub fn dangling_references(&self) -> Vec<String> {
        let known: HashMap<&str, ()> = self
            .segments
            .iter()
            .map(|s| (s.name.as_str(), ()))
            .collect();
        let mut bad = Vec::new();
        for link in &self.links {
            for name in [&link.from, &link.to] {
                if !known.contains_key(name.as_str()) {
                    bad.push(name.clone());
                }
            }
        }
        for path in &self.paths {
            for (name, _) in &path.steps {
                if !known.contains_key(name.as_str()) {
                    bad.push(name.clone());
                }
            }
        }
        bad.sort();
        bad.dedup();
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GfaGraph {
        let mut graph = GfaGraph::new();
        graph.add_segment("read0", "ACGTACGT".parse().expect("dna"));
        graph.add_segment("read1", "TACGTTTT".parse().expect("dna"));
        graph.add_link("read0", false, "read1", false, 5);
        graph.add_path(
            "contig0",
            vec![("read0".to_owned(), false), ("read1".to_owned(), true)],
        );
        graph
    }

    #[test]
    fn writes_expected_records() {
        let mut buf = Vec::new();
        sample().write(&mut buf).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        assert!(text.starts_with("H\tVN:Z:1.0\n"));
        assert!(text.contains("S\tread0\tACGTACGT\tLN:i:8"));
        assert!(text.contains("L\tread0\t+\tread1\t+\t5M"));
        assert!(text.contains("P\tcontig0\tread0+,read1-\t*"));
    }

    #[test]
    fn parse_round_trip() {
        let mut buf = Vec::new();
        let graph = sample();
        graph.write(&mut buf).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        let back = GfaGraph::parse(&text).expect("parse");
        assert_eq!(back.segments.len(), 2);
        assert_eq!(back.segments[0].seq, graph.segments[0].seq);
        assert_eq!(back.links.len(), 1);
        assert_eq!(back.links[0].overlap, 5);
        assert!(!back.links[0].from_reverse && !back.links[0].to_reverse);
        assert_eq!(back.paths[0].steps, graph.paths[0].steps);
    }

    #[test]
    fn dangling_reference_detection() {
        let mut graph = sample();
        graph.add_link("read0", false, "ghost", true, 3);
        assert_eq!(graph.dangling_references(), vec!["ghost".to_owned()]);
    }

    #[test]
    fn clean_graph_has_no_dangling() {
        assert!(sample().dangling_references().is_empty());
    }

    #[test]
    fn ignores_unknown_record_types() {
        let text = "H\tVN:Z:1.0\n# comment\nS\tx\tACGT\nW\twalkstuff\n";
        let graph = GfaGraph::parse(text).expect("parse");
        assert_eq!(graph.segments.len(), 1);
    }
}
