//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! a plain-text timing harness behind the criterion API surface the bench
//! targets use: [`Criterion::bench_function`], [`Bencher::iter`],
//! [`black_box`], and the `criterion_group!` / `criterion_main!` macros
//! (including the `name = ..; config = ..; targets = ..` form).
//!
//! No statistics beyond mean/min/max, no HTML reports, no comparison to
//! saved baselines — each run prints one line per benchmark.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver. Collects samples until `measurement_time` elapses
/// (with at least `sample_size` samples), after a `warm_up_time` spin.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Run one benchmark and print its timing line.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            budget: self.warm_up_time,
            warmup: true,
            min: 1,
        };
        f(&mut bencher); // warm-up pass (samples discarded)
        bencher.samples.clear();
        bencher.warmup = false;
        bencher.budget = self.measurement_time;
        bencher.min_samples(self.sample_size);
        f(&mut bencher);
        let samples = &bencher.samples;
        assert!(
            !samples.is_empty(),
            "bencher.iter was never called for '{id}'"
        );
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        println!(
            "bench: {id:<40} mean {:>12} min {:>12} max {:>12} ({} samples)",
            fmt_duration(mean),
            fmt_duration(min),
            fmt_duration(max),
            samples.len()
        );
        self
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Passed to the closure given to [`Criterion::bench_function`].
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    warmup: bool,
    // populated via min_samples between the warm-up and measured pass
    min: usize,
}

impl Bencher {
    fn min_samples(&mut self, n: usize) {
        self.min = n;
    }

    /// Time `routine` repeatedly until the time budget and minimum sample
    /// count are both satisfied.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.iter_batched(|| (), |()| routine(), BatchSize::SmallInput)
    }

    /// Time `routine` on fresh inputs from `setup`; only the routine is
    /// measured. `BatchSize` is accepted for API parity and ignored
    /// (every sample gets its own input here).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let started = Instant::now();
        loop {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
            let enough_time = started.elapsed() >= self.budget;
            let enough_samples = self.samples.len() >= self.min.max(1);
            if self.warmup {
                if enough_time {
                    break;
                }
            } else if enough_time && enough_samples {
                break;
            }
        }
    }
}

/// Accepted for API parity with criterion's `iter_batched`; the shim
/// regenerates the input for every sample regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// `criterion_group!` — both the positional and the
/// `name/config/targets` forms used by real criterion.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// `criterion_main!` — emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut runs = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs >= 5);
    }

    criterion_group!(
        name = demo;
        config = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        targets = a_bench
    );

    fn a_bench(c: &mut Criterion) {
        c.bench_function("macro_smoke", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_macro_produces_runner() {
        demo();
    }
}
