//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the thin slice of the `rand 0.8` API its tests and simulators use:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen`, `gen_bool`, and `gen_range` over integer and float
//! ranges. The generator is xoshiro256++ seeded through SplitMix64 —
//! deterministic across runs and platforms, which is all the callers
//! (seeded simulations and property tests) rely on. Streams do **not**
//! match the real `StdRng` (ChaCha12); seeds in this repo were chosen
//! against this generator.

pub mod rngs {
    /// Deterministic xoshiro256++ generator (API-compatible stand-in for
    /// `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }

        /// Next raw 64-bit output (xoshiro256++).
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Seeding portion of the `rand` API used by this workspace.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 state expansion,
    /// the same scheme `rand_core` uses for `seed_from_u64`).
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let state = [next(), next(), next(), next()];
        rngs::StdRng::from_state(state)
    }
}

/// A type that can be drawn uniformly from a half-open `[low, high)`
/// interval (supports [`Rng::gen_range`]).
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open(rng: &mut rngs::StdRng, low: Self, high: Self) -> Self;
    /// Inclusive upper bound sampling, for `low..=high` ranges.
    fn sample_inclusive(rng: &mut rngs::StdRng, low: Self, high: Self) -> Self;
}

/// Map a raw draw onto `[0, span)` without modulo bias (fixed-point
/// multiply, Lemire's method minus the rejection step — the residual bias
/// is < 2⁻⁶⁴·span, irrelevant for test workloads).
fn uniform_below(rng: &mut rngs::StdRng, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut rngs::StdRng, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with empty range");
                let span = (high as i128 - low as i128) as u64;
                (low as i128 + uniform_below(rng, span) as i128) as $t
            }
            fn sample_inclusive(rng: &mut rngs::StdRng, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range called with empty inclusive range");
                let span = (high as i128 - low as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64/u128-adjacent
                    // domain, which no caller in this workspace uses.
                    return (rng.next_u64() as i128) as $t;
                }
                (low as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open(rng: &mut rngs::StdRng, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range called with empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + unit * (high - low)
    }
    fn sample_inclusive(rng: &mut rngs::StdRng, low: Self, high: Self) -> Self {
        Self::sample_half_open(rng, low, high.next_up())
    }
}

impl SampleUniform for f32 {
    fn sample_half_open(rng: &mut rngs::StdRng, low: Self, high: Self) -> Self {
        f64::sample_half_open(rng, low as f64, high as f64) as f32
    }
    fn sample_inclusive(rng: &mut rngs::StdRng, low: Self, high: Self) -> Self {
        f64::sample_inclusive(rng, low as f64, high as f64) as f32
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample(self, rng: &mut rngs::StdRng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample(self, rng: &mut rngs::StdRng) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut rngs::StdRng) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(rng, low, high)
    }
}

/// A type [`Rng::gen`] can produce.
pub trait Standard: Sized {
    fn draw(rng: &mut rngs::StdRng) -> Self;
}

impl Standard for f64 {
    fn draw(rng: &mut rngs::StdRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw(rng: &mut rngs::StdRng) -> Self {
        f64::draw(rng) as f32
    }
}

impl Standard for bool {
    fn draw(rng: &mut rngs::StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),* $(,)?) => {$(
        impl Standard for $t {
            fn draw(rng: &mut rngs::StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Sampling portion of the `rand` API used by this workspace.
pub trait Rng {
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T;
    fn gen_bool(&mut self, p: f64) -> bool;
    fn gen<T: Standard>(&mut self) -> T;
}

impl Rng for rngs::StdRng {
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of [0, 1]"
        );
        f64::draw(self) < p
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(-3i8..4);
            assert!((-3..4).contains(&x));
            let y = rng.gen_range(0usize..=9);
            assert!(y <= 9);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
        assert_eq!((0..100).filter(|_| rng.gen_bool(0.0)).count(), 0);
        assert_eq!((0..100).filter(|_| rng.gen_bool(1.0)).count(), 100);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
