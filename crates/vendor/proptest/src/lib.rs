//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of proptest its test suites use: the [`proptest!`] macro
//! (with `#![proptest_config(..)]`, `pat in strategy` and `name: Type`
//! arguments), range/tuple/`collection::vec` strategies, `prop_map`,
//! `any::<T>()`, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, deliberate for a test-only shim:
//! * no shrinking — a failing case reports the case number and seed, and
//!   reruns reproduce it exactly (generation is seeded from the test
//!   name, so failures are stable across runs);
//! * `prop_assert*` panic immediately instead of returning `Err`;
//! * `prop_assume!` skips the current case without counting it as run.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod test_runner {
    /// Knobs accepted by `#![proptest_config(..)]`. Only `cases` is
    /// honoured; the other fields exist so struct-update syntax against
    /// `ProptestConfig::default()` keeps compiling if tests set them.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Accepted for compatibility; unused (no shrinking here).
        pub max_shrink_iters: u32,
        /// Accepted for compatibility; unused.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
                max_global_rejects: 1024,
            }
        }
    }
}

pub mod strategy {
    use super::StdRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values (proptest's `prop_map`).
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy yielding a constant (proptest's `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    impl<T: rand::SampleUniform> Strategy for std::ops::Range<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    impl<T: rand::SampleUniform> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::StdRng;
    use rand::Rng;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Length specification for [`fn@vec`]: an exact length or a half-open
    /// range (the two forms this workspace's tests use).
    pub trait IntoSizeRange {
        fn into_size_range(self) -> std::ops::Range<usize>;
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> std::ops::Range<usize> {
            self..self + 1
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn into_size_range(self) -> std::ops::Range<usize> {
            self
        }
    }

    /// `proptest::collection::vec(element, len)`.
    pub fn vec<S: Strategy>(element: S, len: impl IntoSizeRange) -> VecStrategy<S> {
        let len = len.into_size_range();
        assert!(
            !len.is_empty(),
            "vec strategy needs a non-empty length range"
        );
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::StdRng;

    /// Types with a canonical whole-domain strategy (`value: T` arguments
    /// in `proptest!` signatures).
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut StdRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut StdRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

    /// `proptest::prelude::any::<T>()`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary_value(rng)
        }
    }
}

/// Everything the `use proptest::prelude::*;` sites expect in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Deterministic per-test RNG: seeded from the test's full module path so
/// every run (and every failure report) regenerates the same cases.
pub fn rng_for(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// Control-flow result of one generated case (internal to the macros).
pub enum CaseResult {
    Ran,
    Skipped,
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

/// Skip the current case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return $crate::CaseResult::Skipped;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return $crate::CaseResult::Skipped;
        }
    };
}

/// The proptest entry macro: an optional `#![proptest_config(..)]` inner
/// attribute followed by `#[test] fn` items whose arguments are either
/// `pattern in strategy` or `name: Type`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!([$cfg] $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!([$crate::test_runner::ProptestConfig::default()] $($rest)*);
    };
}

/// Parse successive `fn` items out of a `proptest!` body.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident($($args:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[allow(unreachable_code, clippy::redundant_closure_call)]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut ran: u32 = 0;
            let mut case: u32 = 0;
            // Cap total attempts so a rejecting prop_assume! can't loop
            // forever (mirrors proptest's global reject limit).
            let max_attempts = config.cases.saturating_mul(16).max(1024);
            while ran < config.cases && case < max_attempts {
                let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)), case);
                case += 1;
                let outcome = $crate::__proptest_case!(rng, $body, $($args)*);
                if let $crate::CaseResult::Ran = outcome {
                    ran += 1;
                }
            }
        }
        $crate::__proptest_items!([$cfg] $($rest)*);
    };
}

/// Bind one case's arguments from their strategies, then run the body.
/// Accumulator-style muncher: `pat in strategy` and `name: Type` forms
/// are rewritten into `(pattern, strategy-expr)` pairs.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // All arguments munched: emit the bindings + body closure.
    (@emit $rng:ident, $body:block, $(($pat:pat, $strat:expr))*) => {{
        $(let $pat = $crate::strategy::Strategy::sample(&$strat, &mut $rng);)*
        (|| -> $crate::CaseResult {
            $body
            $crate::CaseResult::Ran
        })()
    }};
    // `pattern in strategy, ...`
    (@munch $rng:ident, $body:block, [$($done:tt)*] $pat:pat in $strat:expr, $($rest:tt)*) => {
        $crate::__proptest_case!(@munch $rng, $body, [$($done)* ($pat, $strat)] $($rest)*)
    };
    // `pattern in strategy` (final, no trailing comma)
    (@munch $rng:ident, $body:block, [$($done:tt)*] $pat:pat in $strat:expr) => {
        $crate::__proptest_case!(@emit $rng, $body, $($done)* ($pat, $strat))
    };
    // `name: Type, ...`
    (@munch $rng:ident, $body:block, [$($done:tt)*] $arg:ident : $ty:ty, $($rest:tt)*) => {
        $crate::__proptest_case!(@munch $rng, $body, [$($done)* ($arg, $crate::arbitrary::any::<$ty>())] $($rest)*)
    };
    // `name: Type` (final)
    (@munch $rng:ident, $body:block, [$($done:tt)*] $arg:ident : $ty:ty) => {
        $crate::__proptest_case!(@emit $rng, $body, $($done)* ($arg, $crate::arbitrary::any::<$ty>()))
    };
    // Exhausted argument list.
    (@munch $rng:ident, $body:block, [$($done:tt)*]) => {
        $crate::__proptest_case!(@emit $rng, $body, $($done)*)
    };
    // Entry point.
    ($rng:ident, $body:block, $($args:tt)*) => {
        $crate::__proptest_case!(@munch $rng, $body, [] $($args)*)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 0usize..10, y in -3i8..4) {
            prop_assert!(x < 10);
            prop_assert!((-3..4).contains(&y));
        }

        #[test]
        fn vec_strategy_respects_length(v in crate::collection::vec(0u8..4, 0..60)) {
            prop_assert!(v.len() < 60);
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn tuples_and_maps_compose(
            t in (0usize..5, 0usize..5, 1i8..4),
            s in (0u8..26).prop_map(|b| (b'a' + b) as char),
        ) {
            prop_assert!(t.0 < 5 && t.1 < 5 && (1..4).contains(&t.2));
            prop_assert!(s.is_ascii_lowercase());
        }

        #[test]
        fn plain_type_args_use_any(value: u64, flag: bool) {
            // Degenerate check: the draw happened and binds typed values.
            let _ = value;
            let _: bool = flag;
        }

        #[test]
        fn assume_skips_without_failing(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u32..1000, 1..20);
        let a: Vec<u32> = s.sample(&mut crate::rng_for("det", 3));
        let b: Vec<u32> = s.sample(&mut crate::rng_for("det", 3));
        assert_eq!(a, b);
    }
}
