//! X-drop seed-and-extend pairwise alignment (Zhang et al. 2000), the
//! kernel diBELLA 2D / ELBA apply to every nonzero of the candidate
//! overlap matrix `C`. Extension proceeds over antidiagonals with a band
//! that drops cells scoring more than `x` below the running best — the
//! same scheme as SeqAn's / LOGAN's x-drop, including its signature
//! behaviour of *ending alignments early* in noisy regions (which is why
//! ELBA must store `post(e)` explicitly, §4.4).

/// Alignment scoring (linear gaps, as in BELLA).
#[derive(Debug, Clone, Copy)]
pub struct Scoring {
    pub match_score: i32,
    pub mismatch: i32,
    pub gap: i32,
}

impl Default for Scoring {
    fn default() -> Self {
        Scoring {
            match_score: 1,
            mismatch: -1,
            gap: -1,
        }
    }
}

/// Result of extending in one direction from a seed boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extension {
    /// Best score achieved (≥ 0; 0 means no extension).
    pub score: i32,
    /// Bases of the first sequence consumed by the best extension.
    pub a_len: usize,
    /// Bases of the second sequence consumed.
    pub b_len: usize,
}

const NEG: i32 = i32::MIN / 4;

/// Reusable buffers for [`xdrop_extend_with`] / [`extend_seed_with`]:
/// the three rotating antidiagonal bands plus the reversed-prefix
/// staging buffers of the left extension. One workspace serves any
/// number of seed extensions in sequence — the overlap stage holds one
/// per rank and sweeps it over every candidate pair, so the innermost
/// alignment kernel stops paying a fresh set of allocations per read
/// pair. A default-constructed workspace is empty; buffers grow to the
/// largest extension seen and are then reused at that capacity.
#[derive(Debug, Default)]
pub struct XdropWorkspace {
    band_a: Vec<i32>,
    band_b: Vec<i32>,
    band_c: Vec<i32>,
    a_rev: Vec<u8>,
    b_rev: Vec<u8>,
}

impl XdropWorkspace {
    /// Heap bytes currently held by the workspace's band and staging
    /// buffers (by length, like every tracker charge). The alignment
    /// stage reports one workspace per worker as transient scratch so
    /// threaded sweeps stay honest in the `mem-hw` column.
    pub fn heap_bytes(&self) -> usize {
        (self.band_a.len() + self.band_b.len() + self.band_c.len()) * std::mem::size_of::<i32>()
            + self.a_rev.len()
            + self.b_rev.len()
    }
}

/// One-shot [`xdrop_extend_with`]: allocates a throwaway workspace.
/// Call sites extending many seeds should hold an [`XdropWorkspace`]
/// and use the `_with` variant.
pub fn xdrop_extend(a: &[u8], b: &[u8], xdrop: i32, sc: Scoring) -> Extension {
    xdrop_extend_with(&mut XdropWorkspace::default(), a, b, xdrop, sc)
}

/// Extend an alignment from `(0, 0)` over `a` and `b`, stopping when every
/// cell of the current antidiagonal falls more than `xdrop` below the best
/// score seen. Returns the best-scoring endpoint. The antidiagonal band
/// buffers live in `ws` and are reused across calls.
pub fn xdrop_extend_with(
    ws: &mut XdropWorkspace,
    a: &[u8],
    b: &[u8],
    xdrop: i32,
    sc: Scoring,
) -> Extension {
    if a.is_empty() || b.is_empty() {
        return Extension {
            score: 0,
            a_len: 0,
            b_len: 0,
        };
    }
    // Antidiagonal d holds cells (i, j) with i + j = d; arrays are indexed
    // by j relative to their live-band start. Only the live band is ever
    // scanned: a cell on antidiagonal d can only descend from live cells
    // on d-1 (gap moves: j, j-1) or d-2 (diagonal: j-1), so the candidate
    // window is the union of those shifted bands — the x-drop prune keeps
    // it O(error band), not O(sequence length).
    let (alen, blen) = (a.len(), b.len());
    let mut best = Extension {
        score: 0,
        a_len: 0,
        b_len: 0,
    };
    // (band values, j of first cell); empty vec = fully pruned level.
    // Three buffers (borrowed from the workspace, returned on exit)
    // rotate to avoid per-antidiagonal allocation in this innermost
    // pipeline kernel.
    let mut band = std::mem::take(&mut ws.band_a);
    band.clear();
    band.push(0);
    let mut prev: (Vec<i32>, usize) = (band, 0); // d = 0: cell (0,0)
    let mut band = std::mem::take(&mut ws.band_b);
    band.clear();
    let mut prev2: (Vec<i32>, usize) = (band, 0);
    let mut scratch: Vec<i32> = std::mem::take(&mut ws.band_c);
    scratch.clear();
    for d in 1..=(alen + blen) {
        let jmin = d.saturating_sub(alen);
        let jmax = d.min(blen);
        // Candidate window from the live parents.
        let mut lo_cand = usize::MAX;
        let mut hi_cand = 0usize;
        if !prev.0.is_empty() {
            lo_cand = lo_cand.min(prev.1); // gap from (i-1, j)
            hi_cand = hi_cand.max(prev.1 + prev.0.len()); // gap from (i, j-1)
        }
        if !prev2.0.is_empty() {
            lo_cand = lo_cand.min(prev2.1 + 1); // diagonal from (i-1, j-1)
            hi_cand = hi_cand.max(prev2.1 + prev2.0.len());
        }
        if lo_cand == usize::MAX {
            break; // both parent levels fully pruned
        }
        let lo_cand = lo_cand.max(jmin);
        let hi_cand = hi_cand.min(jmax);
        if lo_cand > hi_cand {
            // band slid off the matrix edge; nothing left to extend
            if prev.0.is_empty() {
                break;
            }
            // The dead level reuses the outgoing prev2 allocation so all
            // three buffers stay in the workspace rotation.
            let mut empty = std::mem::take(&mut prev2.0);
            empty.clear();
            prev2 = std::mem::replace(&mut prev, (empty, jmin));
            continue;
        }
        scratch.clear();
        scratch.resize(hi_cand - lo_cand + 1, NEG);
        let cur = &mut scratch;
        let fetch = |band: &(Vec<i32>, usize), j: usize| -> Option<i32> {
            j.checked_sub(band.1)
                .and_then(|idx| band.0.get(idx))
                .copied()
                .filter(|&v| v > NEG)
        };
        for j in lo_cand..=hi_cand {
            let i = d - j;
            let mut s = NEG;
            if i >= 1 {
                if let Some(v) = fetch(&prev, j) {
                    s = s.max(v + sc.gap); // gap in b: from (i-1, j)
                }
            }
            if j >= 1 {
                if let Some(v) = fetch(&prev, j - 1) {
                    s = s.max(v + sc.gap); // gap in a: from (i, j-1)
                }
                if i >= 1 {
                    if let Some(v) = fetch(&prev2, j - 1) {
                        let m = if a[i - 1] == b[j - 1] {
                            sc.match_score
                        } else {
                            sc.mismatch
                        };
                        s = s.max(v + m); // diagonal from (i-1, j-1)
                    }
                }
            }
            if s > NEG && s >= best.score - xdrop {
                cur[j - lo_cand] = s;
                if s > best.score {
                    best = Extension {
                        score: s,
                        a_len: i,
                        b_len: j,
                    };
                }
            }
        }
        // Trim pruned cells from both ends so the band stays tight
        // (in-place: drain the head, truncate the tail — no allocation).
        let new_lo = match cur.iter().position(|&v| v > NEG) {
            None => {
                cur.clear();
                lo_cand
            }
            Some(first) => {
                let last = cur
                    .iter()
                    .rposition(|&v| v > NEG)
                    .expect("live cell exists");
                cur.truncate(last + 1);
                cur.drain(..first);
                lo_cand + first
            }
        };
        if cur.is_empty() && prev.0.is_empty() {
            // two consecutive dead antidiagonals: no diagonal move can
            // revive the extension
            break;
        }
        // rotate buffers: prev2 <- prev <- cur, reuse old prev2 as scratch
        let recycled = std::mem::replace(
            &mut prev2,
            std::mem::replace(&mut prev, (std::mem::take(&mut scratch), new_lo)),
        );
        scratch = recycled.0;
    }
    // Hand the buffers back for the next extension.
    ws.band_a = prev.0;
    ws.band_b = prev2.0;
    ws.band_c = scratch;
    best
}

/// A gapped local alignment around a seed, with inclusive coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedAlignment {
    pub score: i32,
    /// Inclusive aligned span on the first read.
    pub a_beg: usize,
    pub a_end: usize,
    /// Inclusive aligned span on the second (oriented) read.
    pub b_beg: usize,
    pub b_end: usize,
}

/// One-shot [`extend_seed_with`]: allocates a throwaway workspace.
pub fn extend_seed(
    a: &[u8],
    b: &[u8],
    a_pos: usize,
    b_pos: usize,
    k: usize,
    xdrop: i32,
    sc: Scoring,
) -> SeedAlignment {
    extend_seed_with(
        &mut XdropWorkspace::default(),
        a,
        b,
        a_pos,
        b_pos,
        k,
        xdrop,
        sc,
    )
}

/// Seed-and-extend: the k-mer match `a[a_pos .. a_pos+k) == b[b_pos ..
/// b_pos+k)` is extended left and right with x-drop. Sequences are base
/// codes; `b` must already be in the orientation that produced the seed.
/// The workspace's band and reversed-prefix buffers are reused across
/// seed extensions instead of reallocated per call.
#[allow(clippy::too_many_arguments)]
pub fn extend_seed_with(
    ws: &mut XdropWorkspace,
    a: &[u8],
    b: &[u8],
    a_pos: usize,
    b_pos: usize,
    k: usize,
    xdrop: i32,
    sc: Scoring,
) -> SeedAlignment {
    debug_assert!(a_pos + k <= a.len() && b_pos + k <= b.len());
    // Right of the seed.
    let right = xdrop_extend_with(ws, &a[a_pos + k..], &b[b_pos + k..], xdrop, sc);
    // Left of the seed: reverse the prefixes into the workspace's
    // staging buffers (taken out for the duration of the call so the
    // band buffers stay independently borrowable).
    let mut a_rev = std::mem::take(&mut ws.a_rev);
    a_rev.clear();
    a_rev.extend(a[..a_pos].iter().rev().copied());
    let mut b_rev = std::mem::take(&mut ws.b_rev);
    b_rev.clear();
    b_rev.extend(b[..b_pos].iter().rev().copied());
    let left = xdrop_extend_with(ws, &a_rev, &b_rev, xdrop, sc);
    ws.a_rev = a_rev;
    ws.b_rev = b_rev;
    SeedAlignment {
        score: k as i32 * sc.match_score + left.score + right.score,
        a_beg: a_pos - left.a_len,
        a_end: a_pos + k + right.a_len - 1,
        b_beg: b_pos - left.b_len,
        b_end: b_pos + k + right.b_len - 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elba_seq::Seq;

    fn codes(s: &str) -> Vec<u8> {
        s.parse::<Seq>().expect("dna").codes().to_vec()
    }

    #[test]
    fn identical_extends_fully() {
        let a = codes("ACGTACGTACGT");
        let ext = xdrop_extend(&a, &a, 5, Scoring::default());
        assert_eq!(
            ext,
            Extension {
                score: 12,
                a_len: 12,
                b_len: 12
            }
        );
    }

    #[test]
    fn stops_at_garbage_tail() {
        // 10 matching bases then pure mismatch; x-drop must stop near 10.
        let a = codes(&("ACGTACGTAC".to_owned() + "GGGGGGGG"));
        let b = codes(&("ACGTACGTAC".to_owned() + "TTTTTTTT"));
        let ext = xdrop_extend(&a, &b, 3, Scoring::default());
        assert_eq!(ext.score, 10);
        assert_eq!(ext.a_len, 10);
    }

    #[test]
    fn tolerates_single_mismatch() {
        let a = codes("ACGTACGTAC");
        let mut b = a.clone();
        b[4] = (b[4] + 1) % 4;
        let ext = xdrop_extend(&a, &b, 5, Scoring::default());
        assert_eq!(ext.a_len, 10);
        assert_eq!(ext.score, 9 - 1);
    }

    #[test]
    fn handles_insertion_with_gap() {
        // b has one extra base inserted in the middle.
        let a = codes("ACGTACGTACGTACGT");
        let b = codes("ACGTACGTTACGTACGT");
        let ext = xdrop_extend(&a, &b, 6, Scoring::default());
        assert_eq!(ext.a_len, 16);
        assert_eq!(ext.b_len, 17);
        assert_eq!(ext.score, 16 - 1); // 16 matches, one gap
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(
            xdrop_extend(&[], &[0, 1], 3, Scoring::default()),
            Extension {
                score: 0,
                a_len: 0,
                b_len: 0
            }
        );
    }

    #[test]
    fn xdrop_zero_stops_at_first_mismatch() {
        let a = codes("AAAATAAAA");
        let b = codes("AAAACAAAA");
        let ext = xdrop_extend(&a, &b, 0, Scoring::default());
        assert_eq!(ext.a_len, 4);
        assert_eq!(ext.score, 4);
    }

    #[test]
    fn seed_extension_covers_true_overlap() {
        // a = g[0..30], b = g[20..50]; seed at the start of the shared span.
        let g = codes("ACGTTGCAACGTGGATCCATTTACGGCAATCGGTTACCAGGTTCAAGCCA");
        let a = &g[0..30];
        let b = &g[20..50];
        // shared region: a[20..30] == b[0..10]; seed k=6 at a_pos=20,b_pos=0
        let aln = extend_seed(a, b, 20, 0, 6, 10, Scoring::default());
        assert_eq!((aln.a_beg, aln.a_end), (20, 29));
        assert_eq!((aln.b_beg, aln.b_end), (0, 9));
        assert_eq!(aln.score, 10);
    }

    #[test]
    fn seed_in_middle_extends_both_ways() {
        let g = codes("ACGTTGCAACGTGGATCCATTTACGGCAATCGGTTACCAGGTTCAAGCCA");
        let a = &g[0..40];
        let b = &g[10..50];
        // seed inside the shared region g[10..40]: a_pos=25, b_pos=15
        let aln = extend_seed(a, b, 25, 15, 5, 10, Scoring::default());
        assert_eq!((aln.a_beg, aln.a_end), (10, 39));
        assert_eq!((aln.b_beg, aln.b_end), (0, 29));
        assert_eq!(aln.score, 30);
    }

    #[test]
    fn workspace_reuse_matches_one_shot() {
        // A shared workspace across many extensions (including some that
        // prune early and some that run long) must give byte-identical
        // results to fresh buffers per call — stale band contents from a
        // previous extension may never leak into the next.
        let g = codes("ACGTTGCAACGTGGATCCATTTACGGCAATCGGTTACCAGGTTCAAGCCA");
        let mut ws = XdropWorkspace::default();
        let cases: Vec<(Vec<u8>, Vec<u8>, i32)> = vec![
            (g[0..30].to_vec(), g[0..30].to_vec(), 5),
            (codes("AAAATAAAA"), codes("AAAACAAAA"), 0),
            (g[0..40].to_vec(), g[10..50].to_vec(), 10),
            (codes("ACGT"), codes("TGCA"), 2),
            (g.clone(), g.clone(), 20),
        ];
        for (a, b, x) in &cases {
            let fresh = xdrop_extend(a, b, *x, Scoring::default());
            let reused = xdrop_extend_with(&mut ws, a, b, *x, Scoring::default());
            assert_eq!(fresh, reused);
        }
        // And the seeded wrapper, which also exercises the reversed
        // prefix staging buffers.
        let one_shot = extend_seed(&g[0..40], &g[10..50], 25, 15, 5, 10, Scoring::default());
        let with_ws = extend_seed_with(
            &mut ws,
            &g[0..40],
            &g[10..50],
            25,
            15,
            5,
            10,
            Scoring::default(),
        );
        assert_eq!(one_shot, with_ws);
    }

    #[test]
    fn workspace_per_worker_matches_one_shot() {
        // The threaded alignment batch's contract, mirrored at the
        // kernel level: a batch of seed extensions split across workers
        // — each worker owning one workspace reused across *its* share
        // of the batch, claimed by self-scheduling — must produce
        // results identical to fresh one-shot buffers per extension, in
        // batch order, for every worker count.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(91);
        let g: Vec<u8> = (0..600).map(|_| rng.gen_range(0..4u8)).collect();
        // Overlapping window pairs with a shared seed; some noisy.
        let mut cases = Vec::new();
        for t in 0..40usize {
            let start = (t * 13) % 300;
            let mut a = g[start..start + 200].to_vec();
            let b = g[start + 80..start + 280].to_vec();
            if t % 3 == 0 {
                let at = (t * 7) % a.len();
                a[at] = (a[at] + 1) % 4;
            }
            cases.push((
                a,
                b,
                100 + (t % 40),
                20 - (t % 40).min(15),
                10 + (t % 9) as i32,
            ));
        }
        let one_shot: Vec<SeedAlignment> = cases
            .iter()
            .map(|(a, b, ap, bp, x)| extend_seed(a, b, *ap, *bp, 12, *x, Scoring::default()))
            .collect();
        for workers in [1usize, 2, 4, 7] {
            let mut workspaces: Vec<XdropWorkspace> =
                (0..workers).map(|_| XdropWorkspace::default()).collect();
            let batched = elba_par::run_indexed_with(cases.len(), &mut workspaces, |i, ws| {
                let (a, b, ap, bp, x) = &cases[i];
                extend_seed_with(ws, a, b, *ap, *bp, 12, *x, Scoring::default())
            });
            assert_eq!(one_shot, batched, "workers={workers}");
        }
    }

    #[test]
    fn noisy_overlap_still_found() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let g: Vec<u8> = (0..400).map(|_| rng.gen_range(0..4u8)).collect();
        let mut a = g[0..250].to_vec();
        let b = g[150..400].to_vec();
        // sprinkle 1% substitutions into a
        for _ in 0..2 {
            let at = rng.gen_range(0..a.len());
            a[at] = (a[at] + 1) % 4;
        }
        // find an exact seed in the overlap region a[150..250] == b[0..100]
        let mut seed = None;
        'outer: for off in (0..80).step_by(7) {
            let a_pos = 160 + off;
            let b_pos = 10 + off;
            if a[a_pos..a_pos + 15] == b[b_pos..b_pos + 15] {
                seed = Some((a_pos, b_pos));
                break 'outer;
            }
        }
        let (a_pos, b_pos) = seed.expect("an error-free 15-mer seed exists");
        let aln = extend_seed(&a, &b, a_pos, b_pos, 15, 20, Scoring::default());
        // must span (nearly) the full 100-base true overlap
        assert!(
            aln.a_end - aln.a_beg + 1 >= 90,
            "span {}",
            aln.a_end - aln.a_beg + 1
        );
        assert!(aln.score >= 80);
    }
}
