//! X-drop seed-and-extend pairwise alignment (Zhang et al. 2000), the
//! kernel diBELLA 2D / ELBA apply to every nonzero of the candidate
//! overlap matrix `C`. Extension proceeds over antidiagonals with a band
//! that drops cells scoring more than `x` below the running best — the
//! same scheme as SeqAn's / LOGAN's x-drop, including its signature
//! behaviour of *ending alignments early* in noisy regions (which is why
//! ELBA must store `post(e)` explicitly, §4.4).

/// Alignment scoring (linear gaps, as in BELLA).
#[derive(Debug, Clone, Copy)]
pub struct Scoring {
    pub match_score: i32,
    pub mismatch: i32,
    pub gap: i32,
}

impl Default for Scoring {
    fn default() -> Self {
        Scoring {
            match_score: 1,
            mismatch: -1,
            gap: -1,
        }
    }
}

/// Result of extending in one direction from a seed boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extension {
    /// Best score achieved (≥ 0; 0 means no extension).
    pub score: i32,
    /// Bases of the first sequence consumed by the best extension.
    pub a_len: usize,
    /// Bases of the second sequence consumed.
    pub b_len: usize,
}

const NEG: i32 = i32::MIN / 4;

/// Which inner-loop implementation [`xdrop_extend_with`] runs. Both
/// kernels compute the identical antidiagonal recurrence; the choice
/// never changes scores, extents, or any downstream output — it is a
/// pure speed knob (the CLI's `--xdrop-kernel`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum XdropKernel {
    /// The reference cell-at-a-time DP — the oracle every other kernel
    /// is property-pinned against.
    Scalar,
    /// Bit-parallel band kernel: Myers-style per-base match masks are
    /// packed into `u64` words so the interior of each antidiagonal
    /// runs branch-free, 64 match bits per mask fetch (portable integer
    /// ops only). Inputs it cannot handle exactly (non-ACGT codes,
    /// extreme scoring/x-drop magnitudes) fall back to the scalar
    /// oracle, so output equality holds on *all* inputs.
    BitParallel,
    /// Let the library pick (currently always the bit-parallel kernel,
    /// which falls back to scalar where needed).
    #[default]
    Auto,
}

/// Largest `|match|`/`|mismatch|`/`|gap|` the bit-parallel kernel
/// accepts. Together with [`XDROP_CLAMP`] this guarantees that scores
/// derived from a live parent stay above [`LIVE_FLOOR`] while scores
/// derived from a pruned-cell sentinel stay below it, so a single
/// comparison reproduces the scalar path's per-parent liveness checks
/// exactly. Out-of-range scorings run the scalar oracle instead.
const STEP_CLAMP: i32 = 1 << 20;
/// Largest `|xdrop|` the bit-parallel kernel accepts (see
/// [`STEP_CLAMP`]).
const XDROP_CLAMP: i32 = 1 << 26;
/// Separator between live-derived and sentinel-derived scores in the
/// bit-parallel interior: live parents are `>= -(XDROP_CLAMP +
/// STEP_CLAMP)` after one step, sentinels at most `NEG + STEP_CLAMP`.
const LIVE_FLOOR: i32 = NEG / 2;

/// Reusable buffers for [`xdrop_extend_with`] / [`extend_seed_with`]:
/// the three rotating antidiagonal bands plus the reversed-prefix
/// staging buffers of the left extension. One workspace serves any
/// number of seed extensions in sequence — the overlap stage holds one
/// per rank and sweeps it over every candidate pair, so the innermost
/// alignment kernel stops paying a fresh set of allocations per read
/// pair. A default-constructed workspace is empty; buffers grow to the
/// largest extension seen and are then reused at that capacity.
///
/// The workspace also pins the [`XdropKernel`] used by every extension
/// run through it (default [`XdropKernel::Auto`]); the bit-parallel
/// kernel's match-mask words live here too, so kernel choice costs no
/// per-call allocation either.
#[derive(Debug, Default)]
pub struct XdropWorkspace {
    kernel: XdropKernel,
    band_a: Vec<i32>,
    band_b: Vec<i32>,
    band_c: Vec<i32>,
    a_rev: Vec<u8>,
    b_rev: Vec<u8>,
    /// Per-class match-mask words over the *reversed* first sequence
    /// (bit `x` of class `c` set iff `a[alen-1-x] == c`), built lazily
    /// word-by-word as the band reaches them.
    amask: [Vec<u64>; 4],
    /// Per-class match-mask words over the second sequence (bit `x` set
    /// iff `b[x] == c`), built lazily from the low end.
    bmask: [Vec<u64>; 4],
}

impl XdropWorkspace {
    /// A workspace whose extensions run the given kernel.
    pub fn with_kernel(kernel: XdropKernel) -> Self {
        XdropWorkspace {
            kernel,
            ..Self::default()
        }
    }

    /// The kernel this workspace dispatches to.
    pub fn kernel(&self) -> XdropKernel {
        self.kernel
    }

    /// Heap bytes currently held by the workspace's band, staging and
    /// match-mask buffers (by length, like every tracker charge). The
    /// alignment stage reports one workspace per worker as transient
    /// scratch so threaded sweeps stay honest in the `mem-hw` column.
    pub fn heap_bytes(&self) -> usize {
        let masks: usize = self
            .amask
            .iter()
            .chain(self.bmask.iter())
            .map(Vec::len)
            .sum();
        (self.band_a.len() + self.band_b.len() + self.band_c.len()) * std::mem::size_of::<i32>()
            + masks * std::mem::size_of::<u64>()
            + self.a_rev.len()
            + self.b_rev.len()
    }
}

/// One-shot [`xdrop_extend_with`]: allocates a throwaway workspace.
/// Call sites extending many seeds should hold an [`XdropWorkspace`]
/// and use the `_with` variant.
pub fn xdrop_extend(a: &[u8], b: &[u8], xdrop: i32, sc: Scoring) -> Extension {
    xdrop_extend_with(&mut XdropWorkspace::default(), a, b, xdrop, sc)
}

/// Extend an alignment from `(0, 0)` over `a` and `b`, stopping when every
/// cell of the current antidiagonal falls more than `xdrop` below the best
/// score seen. Returns the best-scoring endpoint. The antidiagonal band
/// buffers live in `ws` and are reused across calls; the workspace's
/// [`XdropKernel`] picks the implementation, with every kernel
/// guaranteed to return the exact scalar-oracle result.
pub fn xdrop_extend_with(
    ws: &mut XdropWorkspace,
    a: &[u8],
    b: &[u8],
    xdrop: i32,
    sc: Scoring,
) -> Extension {
    match ws.kernel {
        XdropKernel::Scalar => xdrop_extend_scalar(ws, a, b, xdrop, sc),
        XdropKernel::BitParallel | XdropKernel::Auto => {
            let clamp = -STEP_CLAMP..=STEP_CLAMP;
            if !clamp.contains(&sc.match_score)
                || !clamp.contains(&sc.mismatch)
                || !clamp.contains(&sc.gap)
                || !(-XDROP_CLAMP..=XDROP_CLAMP).contains(&xdrop)
            {
                // Sentinel arithmetic can no longer separate live from
                // pruned parents; the oracle handles any magnitude.
                return xdrop_extend_scalar(ws, a, b, xdrop, sc);
            }
            match xdrop_extend_bitparallel(ws, a, b, xdrop, sc) {
                Some(ext) => ext,
                // Non-ACGT codes reached the band: the 4-class masks
                // cannot represent them, the oracle's byte compare can.
                None => xdrop_extend_scalar(ws, a, b, xdrop, sc),
            }
        }
    }
}

/// The reference cell-at-a-time antidiagonal DP ([`XdropKernel::Scalar`]).
fn xdrop_extend_scalar(
    ws: &mut XdropWorkspace,
    a: &[u8],
    b: &[u8],
    xdrop: i32,
    sc: Scoring,
) -> Extension {
    if a.is_empty() || b.is_empty() {
        return Extension {
            score: 0,
            a_len: 0,
            b_len: 0,
        };
    }
    // Antidiagonal d holds cells (i, j) with i + j = d; arrays are indexed
    // by j relative to their live-band start. Only the live band is ever
    // scanned: a cell on antidiagonal d can only descend from live cells
    // on d-1 (gap moves: j, j-1) or d-2 (diagonal: j-1), so the candidate
    // window is the union of those shifted bands — the x-drop prune keeps
    // it O(error band), not O(sequence length).
    let (alen, blen) = (a.len(), b.len());
    let mut best = Extension {
        score: 0,
        a_len: 0,
        b_len: 0,
    };
    // (band values, j of first cell); empty vec = fully pruned level.
    // Three buffers (borrowed from the workspace, returned on exit)
    // rotate to avoid per-antidiagonal allocation in this innermost
    // pipeline kernel.
    let mut band = std::mem::take(&mut ws.band_a);
    band.clear();
    band.push(0);
    let mut prev: (Vec<i32>, usize) = (band, 0); // d = 0: cell (0,0)
    let mut band = std::mem::take(&mut ws.band_b);
    band.clear();
    let mut prev2: (Vec<i32>, usize) = (band, 0);
    let mut scratch: Vec<i32> = std::mem::take(&mut ws.band_c);
    scratch.clear();
    for d in 1..=(alen + blen) {
        let jmin = d.saturating_sub(alen);
        let jmax = d.min(blen);
        // Candidate window from the live parents.
        let mut lo_cand = usize::MAX;
        let mut hi_cand = 0usize;
        if !prev.0.is_empty() {
            lo_cand = lo_cand.min(prev.1); // gap from (i-1, j)
            hi_cand = hi_cand.max(prev.1 + prev.0.len()); // gap from (i, j-1)
        }
        if !prev2.0.is_empty() {
            lo_cand = lo_cand.min(prev2.1 + 1); // diagonal from (i-1, j-1)
            hi_cand = hi_cand.max(prev2.1 + prev2.0.len());
        }
        if lo_cand == usize::MAX {
            break; // both parent levels fully pruned
        }
        let lo_cand = lo_cand.max(jmin);
        let hi_cand = hi_cand.min(jmax);
        if lo_cand > hi_cand {
            // band slid off the matrix edge; nothing left to extend
            if prev.0.is_empty() {
                break;
            }
            // The dead level reuses the outgoing prev2 allocation so all
            // three buffers stay in the workspace rotation.
            let mut empty = std::mem::take(&mut prev2.0);
            empty.clear();
            prev2 = std::mem::replace(&mut prev, (empty, jmin));
            continue;
        }
        scratch.clear();
        scratch.resize(hi_cand - lo_cand + 1, NEG);
        let cur = &mut scratch;
        let fetch = |band: &(Vec<i32>, usize), j: usize| -> Option<i32> {
            j.checked_sub(band.1)
                .and_then(|idx| band.0.get(idx))
                .copied()
                .filter(|&v| v > NEG)
        };
        for j in lo_cand..=hi_cand {
            let i = d - j;
            let mut s = NEG;
            if i >= 1 {
                if let Some(v) = fetch(&prev, j) {
                    s = s.max(v + sc.gap); // gap in b: from (i-1, j)
                }
            }
            if j >= 1 {
                if let Some(v) = fetch(&prev, j - 1) {
                    s = s.max(v + sc.gap); // gap in a: from (i, j-1)
                }
                if i >= 1 {
                    if let Some(v) = fetch(&prev2, j - 1) {
                        let m = if a[i - 1] == b[j - 1] {
                            sc.match_score
                        } else {
                            sc.mismatch
                        };
                        s = s.max(v + m); // diagonal from (i-1, j-1)
                    }
                }
            }
            if s > NEG && s >= best.score - xdrop {
                cur[j - lo_cand] = s;
                if s > best.score {
                    best = Extension {
                        score: s,
                        a_len: i,
                        b_len: j,
                    };
                }
            }
        }
        // Trim pruned cells from both ends so the band stays tight
        // (in-place: drain the head, truncate the tail — no allocation).
        let new_lo = match cur.iter().position(|&v| v > NEG) {
            None => {
                cur.clear();
                lo_cand
            }
            Some(first) => {
                let last = cur
                    .iter()
                    .rposition(|&v| v > NEG)
                    .expect("live cell exists");
                cur.truncate(last + 1);
                cur.drain(..first);
                lo_cand + first
            }
        };
        if cur.is_empty() && prev.0.is_empty() {
            // two consecutive dead antidiagonals: no diagonal move can
            // revive the extension
            break;
        }
        // rotate buffers: prev2 <- prev <- cur, reuse old prev2 as scratch
        let recycled = std::mem::replace(
            &mut prev2,
            std::mem::replace(&mut prev, (std::mem::take(&mut scratch), new_lo)),
        );
        scratch = recycled.0;
    }
    // Hand the buffers back for the next extension.
    ws.band_a = prev.0;
    ws.band_b = prev2.0;
    ws.band_c = scratch;
    best
}

/// 64 consecutive mask bits starting at `bit` (little-endian across
/// words). The mask vectors carry one pad word so the `w + 1` read is
/// always in bounds.
#[inline]
fn extract64(mask: &[u64], bit: usize) -> u64 {
    let w = bit >> 6;
    let sh = (bit & 63) as u32;
    let lo = mask[w] >> sh;
    if sh == 0 {
        lo
    } else {
        lo | (mask[w + 1] << (64 - sh))
    }
}

/// Build mask word `w` over the reversed first sequence: bit `x` of
/// class `c` is `a[alen-1-x] == c`. Returns `false` on a non-ACGT code
/// (caller falls back to the scalar oracle). Words are zeroed here, not
/// in bulk, so a short-lived extension never pays a full-length memset.
fn build_rev_word(a: &[u8], masks: &mut [Vec<u64>; 4], w: usize) -> bool {
    for m in masks.iter_mut() {
        m[w] = 0;
    }
    let alen = a.len();
    for x in w * 64..(w * 64 + 64).min(alen) {
        let c = a[alen - 1 - x];
        if c >= 4 {
            return false;
        }
        masks[c as usize][w] |= 1u64 << (x & 63);
    }
    true
}

/// Build mask word `w` over the second sequence: bit `x` of class `c`
/// is `b[x] == c`. Returns `false` on a non-ACGT code.
fn build_fwd_word(b: &[u8], masks: &mut [Vec<u64>; 4], w: usize) -> bool {
    for m in masks.iter_mut() {
        m[w] = 0;
    }
    let hi = (w * 64 + 64).min(b.len());
    for (x, &c) in b[w * 64..hi]
        .iter()
        .enumerate()
        .map(|(i, c)| (w * 64 + i, c))
    {
        if c >= 4 {
            return false;
        }
        masks[c as usize][w] |= 1u64 << (x & 63);
    }
    true
}

/// One cell computed exactly as the scalar oracle does, with checked
/// parent lookups — used for the few cells per antidiagonal whose
/// parents fall outside both live bands' common interior.
#[inline]
fn edge_score(
    a: &[u8],
    b: &[u8],
    d: usize,
    j: usize,
    prev: &(Vec<i32>, usize),
    prev2: &(Vec<i32>, usize),
    sc: Scoring,
) -> i32 {
    let fetch = |band: &(Vec<i32>, usize), j: usize| -> Option<i32> {
        j.checked_sub(band.1)
            .and_then(|idx| band.0.get(idx))
            .copied()
            .filter(|&v| v > NEG)
    };
    let i = d - j;
    let mut s = NEG;
    if i >= 1 {
        if let Some(v) = fetch(prev, j) {
            s = s.max(v + sc.gap);
        }
    }
    if j >= 1 {
        if let Some(v) = fetch(prev, j - 1) {
            s = s.max(v + sc.gap);
        }
        if i >= 1 {
            if let Some(v) = fetch(prev2, j - 1) {
                let m = if a[i - 1] == b[j - 1] {
                    sc.match_score
                } else {
                    sc.mismatch
                };
                s = s.max(v + m);
            }
        }
    }
    s
}

/// The bit-parallel band kernel ([`XdropKernel::BitParallel`]).
///
/// Same antidiagonal sweep, window, trim and termination logic as the
/// scalar oracle, but the *interior* of each antidiagonal — the cells
/// whose three parents all fall inside the live parent bands — runs
/// branch-free: match/mismatch is selected from a precomputed 64-bit
/// match word (the OR over four base classes of `rev(a)`-mask AND
/// `b`-mask fragments, which align because along antidiagonal `d` both
/// the reversed-`a` index `alen-d+j` and the `b` index `j-1` advance
/// with `j`), and pruned parents are represented by the `NEG` sentinel
/// instead of per-parent `Option` checks. Clamped scoring (checked by
/// the dispatcher) guarantees sentinel-derived candidates stay below
/// [`LIVE_FLOOR`] and live-derived ones above it, so `s > LIVE_FLOOR`
/// reproduces the oracle's liveness test exactly; cells outside the
/// interior run the oracle's own checked per-cell code. Mask words are
/// built lazily as the band first touches them, so extensions that die
/// after a few antidiagonals never pay O(len) mask setup.
///
/// Returns `None` (with the workspace intact) if a non-ACGT code is
/// about to enter a mask word; the dispatcher reruns the scalar oracle.
fn xdrop_extend_bitparallel(
    ws: &mut XdropWorkspace,
    a: &[u8],
    b: &[u8],
    xdrop: i32,
    sc: Scoring,
) -> Option<Extension> {
    if a.is_empty() || b.is_empty() {
        return Some(Extension {
            score: 0,
            a_len: 0,
            b_len: 0,
        });
    }
    let (alen, blen) = (a.len(), b.len());
    let n_aw = alen.div_ceil(64);
    let n_bw = blen.div_ceil(64);
    for m in ws.amask.iter_mut() {
        if m.len() < n_aw + 1 {
            m.resize(n_aw + 1, 0);
        }
    }
    for m in ws.bmask.iter_mut() {
        if m.len() < n_bw + 1 {
            m.resize(n_bw + 1, 0);
        }
    }
    // Lazily-built coverage: rev(a) words [a_low, n_aw) and b words
    // [0, b_hi) hold this call's masks; everything else is stale and
    // only ever read into lanes the interior loop discards.
    let mut a_low = n_aw;
    let mut b_hi = 0usize;
    let mut best = Extension {
        score: 0,
        a_len: 0,
        b_len: 0,
    };
    let mut band = std::mem::take(&mut ws.band_a);
    band.clear();
    band.push(0);
    let mut prev: (Vec<i32>, usize) = (band, 0);
    let mut band = std::mem::take(&mut ws.band_b);
    band.clear();
    let mut prev2: (Vec<i32>, usize) = (band, 0);
    let mut scratch: Vec<i32> = std::mem::take(&mut ws.band_c);
    scratch.clear();
    for d in 1..=(alen + blen) {
        let jmin = d.saturating_sub(alen);
        let jmax = d.min(blen);
        let mut lo_cand = usize::MAX;
        let mut hi_cand = 0usize;
        if !prev.0.is_empty() {
            lo_cand = lo_cand.min(prev.1);
            hi_cand = hi_cand.max(prev.1 + prev.0.len());
        }
        if !prev2.0.is_empty() {
            lo_cand = lo_cand.min(prev2.1 + 1);
            hi_cand = hi_cand.max(prev2.1 + prev2.0.len());
        }
        if lo_cand == usize::MAX {
            break;
        }
        let lo_cand = lo_cand.max(jmin);
        let hi_cand = hi_cand.min(jmax);
        if lo_cand > hi_cand {
            if prev.0.is_empty() {
                break;
            }
            let mut empty = std::mem::take(&mut prev2.0);
            empty.clear();
            prev2 = std::mem::replace(&mut prev, (empty, jmin));
            continue;
        }
        scratch.clear();
        scratch.resize(hi_cand - lo_cand + 1, NEG);
        // Interior: cells whose gap parents (prev at j, j-1) and
        // diagonal parent (prev2 at j-1) are all in-range, so checked
        // fetches collapse into plain indexed loads.
        let (int_lo, int_hi) = if prev.0.is_empty() || prev2.0.is_empty() {
            (1usize, 0usize)
        } else {
            (
                lo_cand.max(prev.1 + 1).max(prev2.1 + 1).max(1),
                hi_cand
                    .min(prev.1 + prev.0.len() - 1)
                    .min(prev2.1 + prev2.0.len())
                    .min(d - 1),
            )
        };
        let has_interior = int_lo <= int_hi;
        let edge_cell = |j: usize,
                         cur: &mut [i32],
                         best: &mut Extension,
                         prev: &(Vec<i32>, usize),
                         prev2: &(Vec<i32>, usize)| {
            let s = edge_score(a, b, d, j, prev, prev2, sc);
            if s > NEG && s >= best.score - xdrop {
                cur[j - lo_cand] = s;
                if s > best.score {
                    *best = Extension {
                        score: s,
                        a_len: d - j,
                        b_len: j,
                    };
                }
            }
        };
        let low_edge_end = if has_interior { int_lo } else { hi_cand + 1 };
        for j in lo_cand..low_edge_end {
            edge_cell(j, &mut scratch, &mut best, &prev, &prev2);
        }
        if has_interior {
            // Make sure the mask words the interior will read are built
            // for this call (extract64 also touches word w+1, which is
            // either built, the zero pad, or stale-but-unused lanes).
            let a_need = (alen + int_lo - d) >> 6;
            while a_low > a_need {
                a_low -= 1;
                if !build_rev_word(a, &mut ws.amask, a_low) {
                    ws.band_a = prev.0;
                    ws.band_b = prev2.0;
                    ws.band_c = scratch;
                    return None;
                }
            }
            let b_need = ((int_hi - 1) >> 6) + 1;
            while b_hi < b_need {
                if !build_fwd_word(b, &mut ws.bmask, b_hi) {
                    ws.band_a = prev.0;
                    ws.band_b = prev2.0;
                    ws.band_c = scratch;
                    return None;
                }
                b_hi += 1;
            }
            let ilen = int_hi - int_lo + 1;
            let p1 = &prev.0[int_lo - prev.1..int_lo - prev.1 + ilen];
            let p0 = &prev.0[int_lo - 1 - prev.1..int_lo - 1 - prev.1 + ilen];
            let q = &prev2.0[int_lo - 1 - prev2.1..int_lo - 1 - prev2.1 + ilen];
            let out = &mut scratch[int_lo - lo_cand..int_lo - lo_cand + ilen];
            let mdiff = sc.match_score - sc.mismatch;
            let mut cut = best.score - xdrop;
            let mut idx = 0usize;
            while idx < ilen {
                let nblock = (ilen - idx).min(64);
                let a_bit = alen + int_lo + idx - d;
                let b_bit = int_lo + idx - 1;
                let mut mw = extract64(&ws.amask[0], a_bit) & extract64(&ws.bmask[0], b_bit);
                mw |= extract64(&ws.amask[1], a_bit) & extract64(&ws.bmask[1], b_bit);
                mw |= extract64(&ws.amask[2], a_bit) & extract64(&ws.bmask[2], b_bit);
                mw |= extract64(&ws.amask[3], a_bit) & extract64(&ws.bmask[3], b_bit);
                let blk = idx..idx + nblock;
                for (t, ((out, &v1), (&v0, &vq))) in out[blk.clone()]
                    .iter_mut()
                    .zip(&p1[blk.clone()])
                    .zip(p0[blk.clone()].iter().zip(&q[blk]))
                    .enumerate()
                {
                    let mbit = ((mw >> t) & 1) as i32;
                    let m = sc.mismatch + (mdiff & -mbit);
                    let s = (v1.max(v0) + sc.gap).max(vq + m);
                    if s > LIVE_FLOOR && s >= cut {
                        *out = s;
                        if s > best.score {
                            let j = int_lo + idx + t;
                            best = Extension {
                                score: s,
                                a_len: d - j,
                                b_len: j,
                            };
                            cut = s - xdrop;
                        }
                    }
                }
                idx += nblock;
            }
            for j in int_hi + 1..=hi_cand {
                edge_cell(j, &mut scratch, &mut best, &prev, &prev2);
            }
        }
        let cur = &mut scratch;
        let new_lo = match cur.iter().position(|&v| v > NEG) {
            None => {
                cur.clear();
                lo_cand
            }
            Some(first) => {
                let last = cur
                    .iter()
                    .rposition(|&v| v > NEG)
                    .expect("live cell exists");
                cur.truncate(last + 1);
                cur.drain(..first);
                lo_cand + first
            }
        };
        if cur.is_empty() && prev.0.is_empty() {
            break;
        }
        let recycled = std::mem::replace(
            &mut prev2,
            std::mem::replace(&mut prev, (std::mem::take(&mut scratch), new_lo)),
        );
        scratch = recycled.0;
    }
    ws.band_a = prev.0;
    ws.band_b = prev2.0;
    ws.band_c = scratch;
    Some(best)
}

/// Length of the common prefix of `a` and `b`, compared 8 bytes at a
/// time (base codes are one byte each, so a word XOR finds the first
/// differing base with one trailing-zeros count).
fn common_prefix(a: &[u8], b: &[u8]) -> usize {
    let n = a.len().min(b.len());
    let mut i = 0;
    while i + 8 <= n {
        let x = u64::from_le_bytes(a[i..i + 8].try_into().expect("8-byte chunk"));
        let y = u64::from_le_bytes(b[i..i + 8].try_into().expect("8-byte chunk"));
        let diff = x ^ y;
        if diff != 0 {
            return i + (diff.trailing_zeros() / 8) as usize;
        }
        i += 8;
    }
    while i < n && a[i] == b[i] {
        i += 1;
    }
    i
}

/// Greedy approximate x-drop extension: the opt-in fast path behind the
/// seed layer's best-only mode (`--seed-chaining best`). Instead of
/// sweeping a DP band, it walks maximal exact-match runs (8 bases per
/// word compare) and resolves each difference with a one-step
/// lookahead — substitution, single-base insertion, or deletion,
/// whichever is followed by the longest next run — giving
/// O(differences) work instead of O(band × length). Extension stops
/// when the running score falls more than `xdrop` below the best.
///
/// Unlike the [`XdropKernel`] variants this is **not** exact: clustered
/// errors or repeats can yield slightly different scores and extents
/// than the DP, which is why only the quality-asserted fast mode uses
/// it — never the default pipeline.
pub fn greedy_extend(a: &[u8], b: &[u8], xdrop: i32, sc: Scoring) -> Extension {
    let (mut i, mut j) = (0usize, 0usize);
    let mut score = 0i64;
    let mut best = Extension {
        score: 0,
        a_len: 0,
        b_len: 0,
    };
    loop {
        let run = common_prefix(&a[i..], &b[j..]);
        i += run;
        j += run;
        score += run as i64 * sc.match_score as i64;
        if score > best.score as i64 {
            best = Extension {
                score: score.min(i32::MAX as i64) as i32,
                a_len: i,
                b_len: j,
            };
        }
        if i >= a.len() || j >= b.len() {
            return best;
        }
        // Difference at (i, j): pick the edit followed by the longest
        // exact run (ties prefer the diagonal substitution).
        let r_sub = common_prefix(&a[i + 1..], &b[j + 1..]);
        let r_del = common_prefix(&a[i + 1..], &b[j..]);
        let r_ins = common_prefix(&a[i..], &b[j + 1..]);
        if r_sub >= r_del && r_sub >= r_ins {
            score += sc.mismatch as i64;
            i += 1;
            j += 1;
        } else {
            score += sc.gap as i64;
            if r_del > r_ins {
                i += 1;
            } else {
                j += 1;
            }
        }
        if score < best.score as i64 - xdrop as i64 {
            return best;
        }
    }
}

/// Greedy counterpart of [`extend_seed_with`]: the same seed-anchored
/// left + right extension, but via [`greedy_extend`]. Approximate —
/// used only by the opt-in fast seed-chaining mode.
#[allow(clippy::too_many_arguments)]
pub fn extend_seed_greedy(
    ws: &mut XdropWorkspace,
    a: &[u8],
    b: &[u8],
    a_pos: usize,
    b_pos: usize,
    k: usize,
    xdrop: i32,
    sc: Scoring,
) -> SeedAlignment {
    debug_assert!(a_pos + k <= a.len() && b_pos + k <= b.len());
    let right = greedy_extend(&a[a_pos + k..], &b[b_pos + k..], xdrop, sc);
    let mut a_rev = std::mem::take(&mut ws.a_rev);
    a_rev.clear();
    a_rev.extend(a[..a_pos].iter().rev().copied());
    let mut b_rev = std::mem::take(&mut ws.b_rev);
    b_rev.clear();
    b_rev.extend(b[..b_pos].iter().rev().copied());
    let left = greedy_extend(&a_rev, &b_rev, xdrop, sc);
    ws.a_rev = a_rev;
    ws.b_rev = b_rev;
    SeedAlignment {
        score: k as i32 * sc.match_score + left.score + right.score,
        a_beg: a_pos - left.a_len,
        a_end: a_pos + k + right.a_len - 1,
        b_beg: b_pos - left.b_len,
        b_end: b_pos + k + right.b_len - 1,
    }
}

/// A gapped local alignment around a seed, with inclusive coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedAlignment {
    pub score: i32,
    /// Inclusive aligned span on the first read.
    pub a_beg: usize,
    pub a_end: usize,
    /// Inclusive aligned span on the second (oriented) read.
    pub b_beg: usize,
    pub b_end: usize,
}

/// One-shot [`extend_seed_with`]: allocates a throwaway workspace.
pub fn extend_seed(
    a: &[u8],
    b: &[u8],
    a_pos: usize,
    b_pos: usize,
    k: usize,
    xdrop: i32,
    sc: Scoring,
) -> SeedAlignment {
    extend_seed_with(
        &mut XdropWorkspace::default(),
        a,
        b,
        a_pos,
        b_pos,
        k,
        xdrop,
        sc,
    )
}

/// Seed-and-extend: the k-mer match `a[a_pos .. a_pos+k) == b[b_pos ..
/// b_pos+k)` is extended left and right with x-drop. Sequences are base
/// codes; `b` must already be in the orientation that produced the seed.
/// The workspace's band and reversed-prefix buffers are reused across
/// seed extensions instead of reallocated per call.
#[allow(clippy::too_many_arguments)]
pub fn extend_seed_with(
    ws: &mut XdropWorkspace,
    a: &[u8],
    b: &[u8],
    a_pos: usize,
    b_pos: usize,
    k: usize,
    xdrop: i32,
    sc: Scoring,
) -> SeedAlignment {
    debug_assert!(a_pos + k <= a.len() && b_pos + k <= b.len());
    // Right of the seed.
    let right = xdrop_extend_with(ws, &a[a_pos + k..], &b[b_pos + k..], xdrop, sc);
    // Left of the seed: reverse the prefixes into the workspace's
    // staging buffers (taken out for the duration of the call so the
    // band buffers stay independently borrowable).
    let mut a_rev = std::mem::take(&mut ws.a_rev);
    a_rev.clear();
    a_rev.extend(a[..a_pos].iter().rev().copied());
    let mut b_rev = std::mem::take(&mut ws.b_rev);
    b_rev.clear();
    b_rev.extend(b[..b_pos].iter().rev().copied());
    let left = xdrop_extend_with(ws, &a_rev, &b_rev, xdrop, sc);
    ws.a_rev = a_rev;
    ws.b_rev = b_rev;
    SeedAlignment {
        score: k as i32 * sc.match_score + left.score + right.score,
        a_beg: a_pos - left.a_len,
        a_end: a_pos + k + right.a_len - 1,
        b_beg: b_pos - left.b_len,
        b_end: b_pos + k + right.b_len - 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elba_seq::Seq;

    fn codes(s: &str) -> Vec<u8> {
        s.parse::<Seq>().expect("dna").codes().to_vec()
    }

    #[test]
    fn identical_extends_fully() {
        let a = codes("ACGTACGTACGT");
        let ext = xdrop_extend(&a, &a, 5, Scoring::default());
        assert_eq!(
            ext,
            Extension {
                score: 12,
                a_len: 12,
                b_len: 12
            }
        );
    }

    #[test]
    fn stops_at_garbage_tail() {
        // 10 matching bases then pure mismatch; x-drop must stop near 10.
        let a = codes(&("ACGTACGTAC".to_owned() + "GGGGGGGG"));
        let b = codes(&("ACGTACGTAC".to_owned() + "TTTTTTTT"));
        let ext = xdrop_extend(&a, &b, 3, Scoring::default());
        assert_eq!(ext.score, 10);
        assert_eq!(ext.a_len, 10);
    }

    #[test]
    fn greedy_extend_handles_clean_and_isolated_errors() {
        let sc = Scoring::default();
        // Identical sequences extend fully.
        let a = codes("ACGTACGTACGTACGT");
        assert_eq!(
            greedy_extend(&a, &a, 5, sc),
            Extension {
                score: 16,
                a_len: 16,
                b_len: 16
            }
        );
        // One substitution mid-way: the lookahead must step over it.
        let mut b = a.clone();
        b[8] = (b[8] + 1) % 4;
        let ext = greedy_extend(&a, &b, 5, sc);
        assert_eq!((ext.score, ext.a_len, ext.b_len), (14, 16, 16));
        // One deletion in b: a gap move re-synchronizes the runs.
        let mut del = a.clone();
        del.remove(8);
        let ext = greedy_extend(&a, &del, 5, sc);
        assert_eq!((ext.a_len, ext.b_len), (16, 15));
        assert_eq!(ext.score, 14);
        // Garbage tail: stops near the clean prefix like the DP.
        let a = codes(&("ACGTACGTAC".to_owned() + "GGGGGGGG"));
        let b = codes(&("ACGTACGTAC".to_owned() + "TTTTTTTT"));
        let ext = greedy_extend(&a, &b, 3, sc);
        assert_eq!((ext.score, ext.a_len), (10, 10));
        // Empty inputs.
        assert_eq!(greedy_extend(&[], &[], 5, sc).score, 0);
        assert_eq!(greedy_extend(&a, &[], 5, sc).score, 0);
    }

    #[test]
    fn greedy_extend_tracks_the_dp_on_noisy_overlaps() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let sc = Scoring::default();
        for _ in 0..40 {
            let a: Vec<u8> = (0..1_500).map(|_| rng.gen_range(0..4u8)).collect();
            let mut b = a.clone();
            for _ in 0..8 {
                let at = rng.gen_range(0..b.len());
                match rng.gen_range(0..3u8) {
                    0 => b[at] = (b[at] + 1) % 4,
                    1 => {
                        b.remove(at);
                    }
                    _ => b.insert(at, rng.gen_range(0..4u8)),
                }
            }
            let dp = xdrop_extend(&a, &b, 30, sc);
            let greedy = greedy_extend(&a, &b, 30, sc);
            // Approximate: clustered errors can cost the one-step
            // lookahead a few points each, but on isolated-error
            // overlaps it must stay within a few percent of the band
            // DP — that margin is what keeps the fast mode's dovetail
            // classification (score ≥ ratio · span) agreeing.
            assert!(
                greedy.score >= dp.score - dp.score / 20 - 6,
                "greedy {} vs dp {}",
                greedy.score,
                dp.score
            );
            assert!(
                greedy.score <= dp.score + 6,
                "greedy {} should not materially beat the x-drop DP {}",
                greedy.score,
                dp.score
            );
        }
    }

    #[test]
    fn tolerates_single_mismatch() {
        let a = codes("ACGTACGTAC");
        let mut b = a.clone();
        b[4] = (b[4] + 1) % 4;
        let ext = xdrop_extend(&a, &b, 5, Scoring::default());
        assert_eq!(ext.a_len, 10);
        assert_eq!(ext.score, 9 - 1);
    }

    #[test]
    fn handles_insertion_with_gap() {
        // b has one extra base inserted in the middle.
        let a = codes("ACGTACGTACGTACGT");
        let b = codes("ACGTACGTTACGTACGT");
        let ext = xdrop_extend(&a, &b, 6, Scoring::default());
        assert_eq!(ext.a_len, 16);
        assert_eq!(ext.b_len, 17);
        assert_eq!(ext.score, 16 - 1); // 16 matches, one gap
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(
            xdrop_extend(&[], &[0, 1], 3, Scoring::default()),
            Extension {
                score: 0,
                a_len: 0,
                b_len: 0
            }
        );
    }

    #[test]
    fn xdrop_zero_stops_at_first_mismatch() {
        let a = codes("AAAATAAAA");
        let b = codes("AAAACAAAA");
        let ext = xdrop_extend(&a, &b, 0, Scoring::default());
        assert_eq!(ext.a_len, 4);
        assert_eq!(ext.score, 4);
    }

    #[test]
    fn seed_extension_covers_true_overlap() {
        // a = g[0..30], b = g[20..50]; seed at the start of the shared span.
        let g = codes("ACGTTGCAACGTGGATCCATTTACGGCAATCGGTTACCAGGTTCAAGCCA");
        let a = &g[0..30];
        let b = &g[20..50];
        // shared region: a[20..30] == b[0..10]; seed k=6 at a_pos=20,b_pos=0
        let aln = extend_seed(a, b, 20, 0, 6, 10, Scoring::default());
        assert_eq!((aln.a_beg, aln.a_end), (20, 29));
        assert_eq!((aln.b_beg, aln.b_end), (0, 9));
        assert_eq!(aln.score, 10);
    }

    #[test]
    fn seed_in_middle_extends_both_ways() {
        let g = codes("ACGTTGCAACGTGGATCCATTTACGGCAATCGGTTACCAGGTTCAAGCCA");
        let a = &g[0..40];
        let b = &g[10..50];
        // seed inside the shared region g[10..40]: a_pos=25, b_pos=15
        let aln = extend_seed(a, b, 25, 15, 5, 10, Scoring::default());
        assert_eq!((aln.a_beg, aln.a_end), (10, 39));
        assert_eq!((aln.b_beg, aln.b_end), (0, 29));
        assert_eq!(aln.score, 30);
    }

    #[test]
    fn workspace_reuse_matches_one_shot() {
        // A shared workspace across many extensions (including some that
        // prune early and some that run long) must give byte-identical
        // results to fresh buffers per call — stale band contents from a
        // previous extension may never leak into the next.
        let g = codes("ACGTTGCAACGTGGATCCATTTACGGCAATCGGTTACCAGGTTCAAGCCA");
        let mut ws = XdropWorkspace::default();
        let cases: Vec<(Vec<u8>, Vec<u8>, i32)> = vec![
            (g[0..30].to_vec(), g[0..30].to_vec(), 5),
            (codes("AAAATAAAA"), codes("AAAACAAAA"), 0),
            (g[0..40].to_vec(), g[10..50].to_vec(), 10),
            (codes("ACGT"), codes("TGCA"), 2),
            (g.clone(), g.clone(), 20),
        ];
        for (a, b, x) in &cases {
            let fresh = xdrop_extend(a, b, *x, Scoring::default());
            let reused = xdrop_extend_with(&mut ws, a, b, *x, Scoring::default());
            assert_eq!(fresh, reused);
        }
        // And the seeded wrapper, which also exercises the reversed
        // prefix staging buffers.
        let one_shot = extend_seed(&g[0..40], &g[10..50], 25, 15, 5, 10, Scoring::default());
        let with_ws = extend_seed_with(
            &mut ws,
            &g[0..40],
            &g[10..50],
            25,
            15,
            5,
            10,
            Scoring::default(),
        );
        assert_eq!(one_shot, with_ws);
    }

    #[test]
    fn workspace_per_worker_matches_one_shot() {
        // The threaded alignment batch's contract, mirrored at the
        // kernel level: a batch of seed extensions split across workers
        // — each worker owning one workspace reused across *its* share
        // of the batch, claimed by self-scheduling — must produce
        // results identical to fresh one-shot buffers per extension, in
        // batch order, for every worker count.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(91);
        let g: Vec<u8> = (0..600).map(|_| rng.gen_range(0..4u8)).collect();
        // Overlapping window pairs with a shared seed; some noisy.
        let mut cases = Vec::new();
        for t in 0..40usize {
            let start = (t * 13) % 300;
            let mut a = g[start..start + 200].to_vec();
            let b = g[start + 80..start + 280].to_vec();
            if t % 3 == 0 {
                let at = (t * 7) % a.len();
                a[at] = (a[at] + 1) % 4;
            }
            cases.push((
                a,
                b,
                100 + (t % 40),
                20 - (t % 40).min(15),
                10 + (t % 9) as i32,
            ));
        }
        let one_shot: Vec<SeedAlignment> = cases
            .iter()
            .map(|(a, b, ap, bp, x)| extend_seed(a, b, *ap, *bp, 12, *x, Scoring::default()))
            .collect();
        for workers in [1usize, 2, 4, 7] {
            let mut workspaces: Vec<XdropWorkspace> =
                (0..workers).map(|_| XdropWorkspace::default()).collect();
            let batched = elba_par::run_indexed_with(cases.len(), &mut workspaces, |i, ws| {
                let (a, b, ap, bp, x) = &cases[i];
                extend_seed_with(ws, a, b, *ap, *bp, 12, *x, Scoring::default())
            });
            assert_eq!(one_shot, batched, "workers={workers}");
        }
    }

    #[test]
    fn noisy_overlap_still_found() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let g: Vec<u8> = (0..400).map(|_| rng.gen_range(0..4u8)).collect();
        let mut a = g[0..250].to_vec();
        let b = g[150..400].to_vec();
        // sprinkle 1% substitutions into a
        for _ in 0..2 {
            let at = rng.gen_range(0..a.len());
            a[at] = (a[at] + 1) % 4;
        }
        // find an exact seed in the overlap region a[150..250] == b[0..100]
        let mut seed = None;
        'outer: for off in (0..80).step_by(7) {
            let a_pos = 160 + off;
            let b_pos = 10 + off;
            if a[a_pos..a_pos + 15] == b[b_pos..b_pos + 15] {
                seed = Some((a_pos, b_pos));
                break 'outer;
            }
        }
        let (a_pos, b_pos) = seed.expect("an error-free 15-mer seed exists");
        let aln = extend_seed(&a, &b, a_pos, b_pos, 15, 20, Scoring::default());
        // must span (nearly) the full 100-base true overlap
        assert!(
            aln.a_end - aln.a_beg + 1 >= 90,
            "span {}",
            aln.a_end - aln.a_beg + 1
        );
        assert!(aln.score >= 80);
    }

    #[test]
    fn bitparallel_matches_scalar_on_random_pairs() {
        // Quick in-module face of the exhaustive proptest pin: random
        // overlapping and unrelated pairs, several scorings and x-drops,
        // shared workspaces on both sides.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        let g: Vec<u8> = (0..2000).map(|_| rng.gen_range(0..4u8)).collect();
        let mut sws = XdropWorkspace::with_kernel(XdropKernel::Scalar);
        let mut bws = XdropWorkspace::with_kernel(XdropKernel::BitParallel);
        let scorings = [
            Scoring::default(),
            Scoring {
                match_score: 2,
                mismatch: -3,
                gap: -2,
            },
            Scoring {
                match_score: 5,
                mismatch: 0,
                gap: -4,
            },
        ];
        for t in 0..60usize {
            let start = rng.gen_range(0..1000);
            let len = rng.gen_range(1..900);
            let mut a = g[start..start + len].to_vec();
            let b = if t % 4 == 0 {
                (0..len).map(|_| rng.gen_range(0..4u8)).collect()
            } else {
                let off = rng.gen_range(0..200.min(len));
                g[start + off..(start + off + len).min(g.len())].to_vec()
            };
            for _ in 0..t % 7 {
                let at = rng.gen_range(0..a.len());
                a[at] = (a[at] + 1) % 4;
            }
            let x = rng.gen_range(0..60);
            let sc = scorings[t % scorings.len()];
            let s = xdrop_extend_with(&mut sws, &a, &b, x, sc);
            let p = xdrop_extend_with(&mut bws, &a, &b, x, sc);
            assert_eq!(s, p, "case {t}: len {len} xdrop {x}");
        }
    }

    #[test]
    fn non_acgt_codes_fall_back_identically() {
        // Codes >= 4 cannot enter the 4-class masks; the bit-parallel
        // path must detect them and rerun the scalar oracle, which
        // compares raw bytes (7 == 7 is a match).
        let mut a = codes("ACGTACGTACGTACGT");
        let mut b = a.clone();
        a[7] = 7;
        b[7] = 7;
        for x in [0, 5, 50] {
            let s = xdrop_extend_with(
                &mut XdropWorkspace::with_kernel(XdropKernel::Scalar),
                &a,
                &b,
                x,
                Scoring::default(),
            );
            let p = xdrop_extend_with(
                &mut XdropWorkspace::with_kernel(XdropKernel::BitParallel),
                &a,
                &b,
                x,
                Scoring::default(),
            );
            assert_eq!(s, p, "xdrop {x}");
            assert_eq!(s.a_len, 16, "code-7 pair aligns through the odd byte");
        }
    }

    #[test]
    fn extreme_parameters_fall_back_identically() {
        // Magnitudes beyond the sentinel clamps run the oracle on both
        // knob settings; outputs must still agree.
        let a = codes("ACGTACGTAC");
        let b = codes("ACGTTCGTAC");
        for (sc, x) in [
            (
                Scoring {
                    match_score: (1 << 20) + 1,
                    mismatch: -(1 << 21),
                    gap: -1,
                },
                10,
            ),
            (
                Scoring {
                    match_score: 1,
                    mismatch: -1,
                    gap: -(1 << 22),
                },
                (1 << 26) + 1,
            ),
        ] {
            let s = xdrop_extend_with(
                &mut XdropWorkspace::with_kernel(XdropKernel::Scalar),
                &a,
                &b,
                x,
                sc,
            );
            let p = xdrop_extend_with(
                &mut XdropWorkspace::with_kernel(XdropKernel::Auto),
                &a,
                &b,
                x,
                sc,
            );
            assert_eq!(s, p);
        }
    }

    #[test]
    fn workspace_kernel_knob_and_mask_accounting() {
        let ws = XdropWorkspace::with_kernel(XdropKernel::Scalar);
        assert_eq!(ws.kernel(), XdropKernel::Scalar);
        assert_eq!(XdropWorkspace::default().kernel(), XdropKernel::Auto);
        // The bit-parallel masks must show up in the scratch-honesty
        // accounting once an extension has sized them.
        let mut bws = XdropWorkspace::with_kernel(XdropKernel::BitParallel);
        let a = codes("ACGTACGTACGTACGTACGT");
        let _ = xdrop_extend_with(&mut bws, &a, &a, 10, Scoring::default());
        let mut sws = XdropWorkspace::with_kernel(XdropKernel::Scalar);
        let _ = xdrop_extend_with(&mut sws, &a, &a, 10, Scoring::default());
        assert!(
            bws.heap_bytes() > sws.heap_bytes(),
            "mask words must be charged: {} vs {}",
            bws.heap_bytes(),
            sws.heap_bytes()
        );
    }
}
