//! Overlap classification: turn a pairwise alignment into bidirected
//! string-graph edges.
//!
//! An alignment between reads `u` and `v` (with `v` possibly
//! reverse-complemented — the `rc` flag) is classified, with a `fuzz`
//! tolerance for x-drop under-extension, as either
//!
//! * a **containment** (one read aligns entirely inside the other — the
//!   paper's "redundant vertex", pruned before transitive reduction),
//! * an **internal match** (the overlap touches neither read's ends on
//!   one side — a repeat-induced alignment, discarded), or
//! * a proper **dovetail**, producing the *pair* of directed edges
//!   `u→v` and `v→u` stored symmetrically in the string matrix `S`.
//!
//! Each directed edge carries exactly what §4.4 needs for local assembly:
//! `pre` (index in the source read of the last base before the overlap,
//! in traversal order), `post` (index in the destination read of the
//! first overlapping base, in traversal order), the traversal
//! orientations of both endpoints, and the overhang (`suffix`) length
//! used as the string-graph weight by transitive reduction.
//!
//! Note on `post`: the paper stores the alignment-begin coordinate and
//! recovers traversal order from the bidirected arrowheads; we store the
//! traversal-order index directly (for a reversed read this is the
//! alignment *end*), which is the same information in walk-ready form —
//! `l[post : pre']` with the paper's inclusive/reverse slicing then works
//! unchanged for both orientations.

use crate::xdrop::SeedAlignment;

/// A pairwise overlap candidate between reads `u` and `v`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverlapAln {
    /// `v` was reverse-complemented before alignment; all `w_*`
    /// coordinates live in that oriented space.
    pub rc: bool,
    /// Inclusive aligned span on `u` (forward coordinates).
    pub u_beg: usize,
    pub u_end: usize,
    /// Inclusive aligned span on oriented `v`.
    pub w_beg: usize,
    pub w_end: usize,
    pub u_len: usize,
    pub v_len: usize,
    pub score: i32,
}

impl OverlapAln {
    pub fn from_seed(aln: SeedAlignment, rc: bool, u_len: usize, v_len: usize) -> Self {
        OverlapAln {
            rc,
            u_beg: aln.a_beg,
            u_end: aln.a_end,
            w_beg: aln.b_beg,
            w_end: aln.b_end,
            u_len,
            v_len,
            score: aln.score,
        }
    }

    /// Aligned span length on `u` (proxy for overlap length).
    pub fn span(&self) -> usize {
        self.u_end - self.u_beg + 1
    }
}

/// One directed string-graph edge (`src → dst`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SgEdge {
    /// Last base of `src` (original coordinates) before the overlap, in
    /// traversal order — the paper's `pre(e)`.
    pub pre: u32,
    /// First overlapping base of `dst` (original coordinates), in
    /// traversal order — the paper's `post(e)`.
    pub post: u32,
    /// `src` is traversed reverse-complemented.
    pub src_rev: bool,
    /// `dst` is traversed reverse-complemented.
    pub dst_rev: bool,
    /// Overhang: bases of `dst` past the overlap in walk direction (the
    /// string-graph edge weight, §2).
    pub suffix: u32,
}

elba_comm::impl_comm_msg_pod!(SgEdge);
elba_mem::impl_deep_bytes_pod!(SgEdge);

/// Classification outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverlapClass {
    /// `u` aligns entirely within `v` — `u` is redundant.
    ContainedU,
    /// `v` aligns entirely within `u`.
    ContainedV,
    /// Overlap interior to both reads on some side; not usable.
    Internal,
    /// Proper dovetail: directed edges for `u→v` and `v→u`.
    Dovetail { fwd: SgEdge, bwd: SgEdge },
}

/// Classify an overlap with tolerance `fuzz` for unaligned overhangs left
/// by x-drop early termination (the paper's motivation for storing
/// `post`).
pub fn classify(aln: &OverlapAln, fuzz: usize) -> OverlapClass {
    let (lu, lv) = (aln.u_len, aln.v_len);
    let left_u = aln.u_beg;
    let right_u = lu - 1 - aln.u_end;
    let left_w = aln.w_beg;
    let right_w = lv - 1 - aln.w_end;

    if left_u <= fuzz && right_u <= fuzz {
        return OverlapClass::ContainedU;
    }
    if left_w <= fuzz && right_w <= fuzz {
        return OverlapClass::ContainedV;
    }
    if left_u.min(left_w) > fuzz || right_u.min(right_w) > fuzz {
        return OverlapClass::Internal;
    }

    let (fwd, bwd) = dovetail_edges(aln);
    OverlapClass::Dovetail { fwd, bwd }
}

/// Compute the directed edge pair for a dovetail overlap, deciding the
/// left read by the larger unaligned left overhang. Exposed separately so
/// the `pre`/`post` bookkeeping can be exercised on alignments (like the
/// paper's Fig. 3 x-drop example) regardless of classification thresholds.
pub fn dovetail_edges(aln: &OverlapAln) -> (SgEdge, SgEdge) {
    let lv = aln.v_len;
    let left_u = aln.u_beg;
    let right_u = aln.u_len - 1 - aln.u_end;
    let left_w = aln.w_beg;
    let right_w = lv - 1 - aln.w_end;
    if left_u > left_w {
        // `u` extends further left: u is the left read of the dovetail.
        if !aln.rc {
            (
                // u→v: walk emits u forward, then v forward.
                SgEdge {
                    pre: (aln.u_beg - 1) as u32,
                    post: aln.w_beg as u32,
                    src_rev: false,
                    dst_rev: false,
                    suffix: right_w as u32,
                },
                // v→u: walk emits rc(v), then rc(u).
                SgEdge {
                    pre: (aln.w_end + 1) as u32,
                    post: aln.u_end as u32,
                    src_rev: true,
                    dst_rev: true,
                    suffix: left_u as u32,
                },
            )
        } else {
            (
                // u→v: u forward, then v reverse-complemented.
                SgEdge {
                    pre: (aln.u_beg - 1) as u32,
                    post: (lv - 1 - aln.w_beg) as u32,
                    src_rev: false,
                    dst_rev: true,
                    suffix: right_w as u32,
                },
                // v→u: v forward (w = rc(v), so reversing the walk makes v
                // forward), then rc(u).
                SgEdge {
                    pre: (lv - aln.w_end - 2) as u32,
                    post: aln.u_end as u32,
                    src_rev: false,
                    dst_rev: true,
                    suffix: left_u as u32,
                },
            )
        }
    } else {
        // Oriented v extends further left: v is the left read.
        if !aln.rc {
            (
                // u→v: walk emits rc(u), then rc(v).
                SgEdge {
                    pre: (aln.u_end + 1) as u32,
                    post: aln.w_end as u32,
                    src_rev: true,
                    dst_rev: true,
                    suffix: left_w as u32,
                },
                // v→u: v forward, then u forward.
                SgEdge {
                    pre: (aln.w_beg - 1) as u32,
                    post: aln.u_beg as u32,
                    src_rev: false,
                    dst_rev: false,
                    suffix: right_u as u32,
                },
            )
        } else {
            (
                // u→v: rc(u), then rc(w) = v forward.
                SgEdge {
                    pre: (aln.u_end + 1) as u32,
                    post: (lv - 1 - aln.w_end) as u32,
                    src_rev: true,
                    dst_rev: false,
                    suffix: left_w as u32,
                },
                // v→u: v reversed (emitting w), then u forward.
                SgEdge {
                    pre: (lv - aln.w_beg) as u32,
                    post: aln.u_beg as u32,
                    src_rev: true,
                    dst_rev: false,
                    suffix: right_u as u32,
                },
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elba_seq::Seq;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn genome(len: usize, seed: u64) -> Seq {
        let mut rng = StdRng::seed_from_u64(seed);
        Seq::from_codes((0..len).map(|_| rng.gen_range(0..4u8)).collect())
    }

    /// Reconstruct the two-read contig implied by edge `e` (src → dst).
    fn walk_two(src: &Seq, dst: &Seq, e: &SgEdge) -> Seq {
        let alpha = if e.src_rev { src.len() - 1 } else { 0 };
        let beta = if e.dst_rev { 0 } else { dst.len() - 1 };
        let mut contig = src.paper_slice(alpha, e.pre as usize);
        contig.extend_from(&dst.paper_slice(e.post as usize, beta));
        contig
    }

    /// Check the dovetail edges rebuild the genome span (or its rc).
    fn assert_dovetail_rebuilds(g: &Seq, u: &Seq, v: &Seq, aln: &OverlapAln, span: Seq) {
        match classify(aln, 0) {
            OverlapClass::Dovetail { fwd, bwd } => {
                let fwd_contig = walk_two(u, v, &fwd);
                let bwd_contig = walk_two(v, u, &bwd);
                assert!(
                    fwd_contig == span || fwd_contig == span.reverse_complement(),
                    "fwd walk mismatch: got {fwd_contig} want {span} (genome len {})",
                    g.len()
                );
                assert!(
                    bwd_contig == span || bwd_contig == span.reverse_complement(),
                    "bwd walk mismatch: got {bwd_contig}"
                );
                // The two walks are reverse complements of each other.
                assert_eq!(fwd_contig.reverse_complement(), bwd_contig);
            }
            other => panic!("expected dovetail, got {other:?}"),
        }
    }

    #[test]
    fn case1_same_strand_u_left() {
        let g = genome(100, 1);
        let u = g.substring(0, 60);
        let v = g.substring(40, 100);
        // true overlap: u[40..=59] == v[0..=19]
        let aln = OverlapAln {
            rc: false,
            u_beg: 40,
            u_end: 59,
            w_beg: 0,
            w_end: 19,
            u_len: 60,
            v_len: 60,
            score: 20,
        };
        assert_dovetail_rebuilds(&g, &u, &v, &aln, g.substring(0, 100));
    }

    #[test]
    fn case2_same_strand_v_left() {
        let g = genome(100, 2);
        let u = g.substring(40, 100);
        let v = g.substring(0, 60);
        // overlap: u[0..=19] == v[40..=59]
        let aln = OverlapAln {
            rc: false,
            u_beg: 0,
            u_end: 19,
            w_beg: 40,
            w_end: 59,
            u_len: 60,
            v_len: 60,
            score: 20,
        };
        assert_dovetail_rebuilds(&g, &u, &v, &aln, g.substring(0, 100));
    }

    #[test]
    fn case3_rc_u_left() {
        let g = genome(100, 3);
        let u = g.substring(0, 60);
        let v = g.substring(40, 100).reverse_complement();
        // oriented w = rc(v) = g[40..100): overlap u[40..=59] == w[0..=19]
        let aln = OverlapAln {
            rc: true,
            u_beg: 40,
            u_end: 59,
            w_beg: 0,
            w_end: 19,
            u_len: 60,
            v_len: 60,
            score: 20,
        };
        assert_dovetail_rebuilds(&g, &u, &v, &aln, g.substring(0, 100));
    }

    #[test]
    fn case4_rc_v_left() {
        let g = genome(100, 4);
        let u = g.substring(40, 100);
        let v = g.substring(0, 60).reverse_complement();
        // w = rc(v) = g[0..60): overlap u[0..=19] == w[40..=59]
        let aln = OverlapAln {
            rc: true,
            u_beg: 0,
            u_end: 19,
            w_beg: 40,
            w_end: 59,
            u_len: 60,
            v_len: 60,
            score: 20,
        };
        assert_dovetail_rebuilds(&g, &u, &v, &aln, g.substring(0, 100));
    }

    #[test]
    fn fig3_pre_post_values() {
        // Fig. 3 first edge: l0 = AGAACT (len 6), l1 = AACTGAAG (len 8),
        // overlap l0[2..=5] == l1[0..=3]: the paper reports pre = 1, post = 0.
        let aln = OverlapAln {
            rc: false,
            u_beg: 2,
            u_end: 5,
            w_beg: 0,
            w_end: 3,
            u_len: 6,
            v_len: 8,
            score: 4,
        };
        match classify(&aln, 0) {
            OverlapClass::Dovetail { fwd, .. } => {
                assert_eq!(fwd.pre, 1);
                assert_eq!(fwd.post, 0);
                assert!(!fwd.src_rev && !fwd.dst_rev);
            }
            other => panic!("expected dovetail, got {other:?}"),
        }
    }

    #[test]
    fn fig3_xdrop_early_termination_edge() {
        // Fig. 3 second edge with x-drop ending early: l1 = AACTGAAG,
        // l2 = TGAAGAA, aligner reports l1[5..=7] ~ l2[2..=4] only.
        // The paper stores pre = 4, post = 2 — post must be kept explicitly.
        let aln = OverlapAln {
            rc: false,
            u_beg: 5,
            u_end: 7,
            w_beg: 2,
            w_end: 4,
            u_len: 8,
            v_len: 7,
            score: 3,
        };
        // The toy reads are so short that classification thresholds would
        // flag this as containment; the paper's point is the pre/post
        // bookkeeping, so exercise the edge computation directly.
        let (fwd, _) = dovetail_edges(&aln);
        assert_eq!(fwd.pre, 4);
        assert_eq!(fwd.post, 2);
        assert!(!fwd.src_rev && !fwd.dst_rev);
        // And the full three-read concatenation matches the paper: see the
        // fig3 test in elba-seq (dna.rs).
    }

    #[test]
    fn containment_detected_both_ways() {
        // u inside v
        let aln = OverlapAln {
            rc: false,
            u_beg: 0,
            u_end: 29,
            w_beg: 10,
            w_end: 39,
            u_len: 30,
            v_len: 60,
            score: 30,
        };
        assert_eq!(classify(&aln, 0), OverlapClass::ContainedU);
        // v inside u
        let aln = OverlapAln {
            rc: true,
            u_beg: 10,
            u_end: 39,
            w_beg: 0,
            w_end: 29,
            u_len: 60,
            v_len: 30,
            score: 30,
        };
        assert_eq!(classify(&aln, 0), OverlapClass::ContainedV);
    }

    #[test]
    fn containment_with_fuzz() {
        // u has 2 unaligned bases at each end; with fuzz >= 2 it is contained.
        let aln = OverlapAln {
            rc: false,
            u_beg: 2,
            u_end: 27,
            w_beg: 10,
            w_end: 35,
            u_len: 30,
            v_len: 60,
            score: 26,
        };
        assert_eq!(classify(&aln, 2), OverlapClass::ContainedU);
        assert_ne!(classify(&aln, 0), OverlapClass::ContainedU);
    }

    #[test]
    fn internal_match_rejected() {
        // overlap floats in the middle of both reads (repeat-induced)
        let aln = OverlapAln {
            rc: false,
            u_beg: 20,
            u_end: 39,
            w_beg: 25,
            w_end: 44,
            u_len: 60,
            v_len: 70,
            score: 20,
        };
        assert_eq!(classify(&aln, 3), OverlapClass::Internal);
    }

    #[test]
    fn suffix_weights_are_overhangs() {
        let g = genome(100, 9);
        let _u = g.substring(0, 60);
        let _v = g.substring(40, 100);
        let aln = OverlapAln {
            rc: false,
            u_beg: 40,
            u_end: 59,
            w_beg: 0,
            w_end: 19,
            u_len: 60,
            v_len: 60,
            score: 20,
        };
        match classify(&aln, 0) {
            OverlapClass::Dovetail { fwd, bwd } => {
                // v extends 40 bases beyond the overlap; u extends 40 left.
                assert_eq!(fwd.suffix, 40);
                assert_eq!(bwd.suffix, 40);
            }
            other => panic!("expected dovetail, got {other:?}"),
        }
    }

    #[test]
    fn randomized_walks_rebuild_genome_spans() {
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..50 {
            let glen = 200;
            let g = genome(glen, 1000 + trial);
            // two overlapping windows
            let a_start = rng.gen_range(0..60);
            let a_end = a_start + rng.gen_range(60..100);
            let b_start = rng.gen_range(a_start + 10..a_end - 30);
            let b_end = (b_start + rng.gen_range(60..120)).min(glen);
            if b_end <= a_end + 5 {
                continue; // need v to extend beyond u
            }
            let u = g.substring(a_start, a_end);
            let v_fwd = g.substring(b_start, b_end);
            let rc = rng.gen_bool(0.5);
            let v = if rc {
                v_fwd.reverse_complement()
            } else {
                v_fwd
            };
            // true overlap in oriented space
            let aln = OverlapAln {
                rc,
                u_beg: b_start - a_start,
                u_end: u.len() - 1,
                w_beg: 0,
                w_end: a_end - b_start - 1,
                u_len: u.len(),
                v_len: v.len(),
                score: (a_end - b_start) as i32,
            };
            let span = g.substring(a_start, b_end);
            assert_dovetail_rebuilds(&g, &u, &v, &aln, span);
        }
    }
}
