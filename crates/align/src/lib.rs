//! # elba-align — pairwise alignment for ELBA-RS
//!
//! The x-drop seed-and-extend kernel applied to every candidate overlap
//! (nonzero of `C = AAᵀ`), and the classification of alignments into
//! bidirected string-graph edges with the paper's `pre(e)` / `post(e)`
//! payloads (§4.4). The classifier handles all four dovetail orientations
//! plus containment (redundant vertices) and repeat-induced internal
//! matches.

pub mod overlap;
pub mod xdrop;

pub use overlap::{classify, dovetail_edges, OverlapAln, OverlapClass, SgEdge};
pub use xdrop::{
    extend_seed, extend_seed_greedy, extend_seed_with, greedy_extend, xdrop_extend,
    xdrop_extend_with, Extension, Scoring, SeedAlignment, XdropKernel, XdropWorkspace,
};
