//! Property tests pinning the bit-parallel x-drop kernel to the scalar
//! oracle: for *every* input — random related or unrelated sequences up
//! to 4 Kbp, every scoring the pipeline uses, x-drop thresholds from 0
//! to 100, empty sequences, and non-ACGT byte codes — `BitParallel`
//! (and therefore `Auto`) must return the byte-identical [`Extension`]
//! the `Scalar` kernel returns. The kernel knob is a pure speed choice;
//! any divergence here is a correctness bug, not a tuning difference.

use elba_align::{xdrop_extend_with, Scoring, XdropKernel, XdropWorkspace};
use proptest::prelude::*;

/// The scorings the assembly pipeline actually runs with, plus skewed
/// ones that stress the mismatch/gap ordering in the recurrence.
const SCORINGS: [Scoring; 4] = [
    Scoring {
        match_score: 1,
        mismatch: -1,
        gap: -1,
    },
    Scoring {
        match_score: 2,
        mismatch: -3,
        gap: -2,
    },
    Scoring {
        match_score: 5,
        mismatch: -4,
        gap: -11,
    },
    Scoring {
        match_score: 3,
        mismatch: 0,
        gap: -1,
    },
];

/// Mutate `base` with substitutions/indels at roughly `rate`, driven by
/// a deterministic byte stream, so pairs look like long-read overlaps
/// (long extensions) rather than unrelated noise (instant x-drop).
fn mutate(base: &[u8], noise: &[u8], rate_pct: u8) -> Vec<u8> {
    let mut out = Vec::with_capacity(base.len() + 8);
    for (i, &c) in base.iter().enumerate() {
        let r = noise[i % noise.len().max(1)] as usize;
        if (r % 100) < rate_pct as usize {
            match r % 3 {
                0 => out.push(((c as usize + 1 + r / 3) % 4) as u8), // substitution
                1 => {}                                              // deletion
                _ => {
                    out.push((r / 3 % 4) as u8); // insertion
                    out.push(c);
                }
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Assert every kernel agrees with the scalar oracle on `(a, b)`,
/// reusing workspaces across calls the way the pipeline does.
fn assert_kernels_agree(
    sws: &mut XdropWorkspace,
    bws: &mut XdropWorkspace,
    a: &[u8],
    b: &[u8],
    xdrop: i32,
    sc: Scoring,
) {
    let want = xdrop_extend_with(sws, a, b, xdrop, sc);
    let got = xdrop_extend_with(bws, a, b, xdrop, sc);
    assert_eq!(
        got,
        want,
        "BitParallel != Scalar (|a|={}, |b|={}, xdrop={xdrop}, sc={sc:?})",
        a.len(),
        b.len()
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    /// Related pairs: mutated copies of a shared template up to 4 Kbp,
    /// the workload the kernel exists for (deep bands, long survival).
    #[test]
    fn bitparallel_equals_scalar_on_related_pairs(
        template in proptest::collection::vec(0u8..4, 0..4000),
        noise in proptest::collection::vec(0u8..=255, 64..256),
        rate_pct in 0u8..25,
        xdrop_idx in 0usize..4,
        sc_idx in 0usize..4,
    ) {
        let xdrop = [0, 5, 30, 100][xdrop_idx];
        let sc = SCORINGS[sc_idx];
        let a = template;
        let b = mutate(&a, &noise, rate_pct);
        let mut sws = XdropWorkspace::with_kernel(XdropKernel::Scalar);
        let mut bws = XdropWorkspace::with_kernel(XdropKernel::BitParallel);
        assert_kernels_agree(&mut sws, &mut bws, &a, &b, xdrop, sc);
        // Same workspaces, swapped operands: reuse must not leak state.
        assert_kernels_agree(&mut sws, &mut bws, &b, &a, xdrop, sc);
    }

    /// Unrelated pairs (plus stray non-ACGT codes): the band dies fast
    /// and the edge/fallback paths dominate.
    #[test]
    fn bitparallel_equals_scalar_on_unrelated_pairs(
        a in proptest::collection::vec(0u8..5, 0..600),
        b in proptest::collection::vec(0u8..5, 0..600),
        xdrop in 0i32..101,
        sc_idx in 0usize..4,
    ) {
        let mut sws = XdropWorkspace::with_kernel(XdropKernel::Scalar);
        let mut bws = XdropWorkspace::with_kernel(XdropKernel::BitParallel);
        assert_kernels_agree(&mut sws, &mut bws, &a, &b, xdrop, SCORINGS[sc_idx]);
    }
}

/// The fixed edge cases proptest ranges can miss: both empty, one empty,
/// single bases, and the `Auto` kernel resolving to the same answer.
#[test]
fn kernels_agree_on_edge_inputs() {
    let sc = Scoring::default();
    let cases: [(&[u8], &[u8]); 6] = [
        (&[], &[]),
        (&[], &[0, 1, 2, 3]),
        (&[2], &[]),
        (&[1], &[1]),
        (&[0], &[3]),
        (&[0, 0, 0, 0], &[0, 0, 0, 0]),
    ];
    for kernel in [XdropKernel::BitParallel, XdropKernel::Auto] {
        let mut sws = XdropWorkspace::with_kernel(XdropKernel::Scalar);
        let mut kws = XdropWorkspace::with_kernel(kernel);
        for (a, b) in cases {
            for xdrop in [0, 1, 100] {
                assert_kernels_agree(&mut sws, &mut kws, a, b, xdrop, sc);
            }
        }
    }
}
