#!/usr/bin/env bash
# Diff per-phase wall times across the perf trajectory (BENCH_pr*.json).
#
# Each PR's bench writes a celegans 2x2 probe; the JSON layout drifted
# across PRs (pr4: bare "phases"; pr5+: one block per config; pr7: the
# auto-schedule probe with default/auto walls per phase; pr8: one block
# per transport x threads config), so this picks one representative
# serial-default config per file and prints a phase x PR table plus the
# delta of each PR against the previous one. Probes that ran more than
# one transport additionally get a per-transport pipeline-seconds table.
# Informational: prints the trend, fails only on unreadable JSON.
#
# Usage: scripts/bench_trend.sh [dir-with-BENCH_pr*.json]
set -euo pipefail

dir="${1:-$(dirname "$0")/..}"

python3 - "$dir" <<'EOF'
import glob
import json
import os
import sys

PHASES = ["CountKmer", "DetectOverlap", "Alignment", "TrReduction", "ExtractContig"]
# Representative config per probe, first match wins: the serial default.
PREFERRED = ["inprocess_t1", "default_auto_chain_t1", "threads1",
             "baseline_scalar_all_t1"]

def phase_walls(doc):
    """Best-effort {phase: wall_secs} from one BENCH_pr*.json."""
    probe = next((v for k, v in doc.items()
                  if "celegans" in k and isinstance(v, dict)), None)
    if probe is None:
        return {}
    if "phases" in probe:  # pr4 layout: one config, bare phase table
        table = probe["phases"]
    else:
        table = None
        for key in PREFERRED + sorted(probe):
            sub = probe.get(key)
            if isinstance(sub, dict) and "phases" in sub:
                table = sub["phases"]
                break
        if table is None:  # pr7 layout: per-phase default/auto walls
            return {k: v["default_wall_secs"] for k, v in probe.items()
                    if isinstance(v, dict) and "default_wall_secs" in v}
    return {k: v["wall_secs"] for k, v in table.items()
            if isinstance(v, dict) and "wall_secs" in v}

files = sorted(glob.glob(os.path.join(sys.argv[1], "BENCH_pr*.json")),
               key=lambda f: int("".join(filter(str.isdigit, os.path.basename(f)))))
if not files:
    sys.exit("no BENCH_pr*.json found")

def transport_totals(doc):
    """{config: pipeline_secs} for probes run on more than one transport
    (pr8+: keys like inprocess_t1 / socket_t2)."""
    probe = next((v for k, v in doc.items()
                  if "celegans" in k and isinstance(v, dict)), None)
    if probe is None:
        return {}
    totals = {k: v["pipeline_secs"] for k, v in probe.items()
              if isinstance(v, dict) and "pipeline_secs" in v
              and ("inprocess" in k or "socket" in k)}
    transports = {k.split("_")[0] for k in totals}
    return totals if len(transports) > 1 else {}

runs = []
transport_runs = []
for f in files:
    with open(f) as fh:
        doc = json.load(fh)
    name = f"pr{doc.get('pr', '?')}"
    runs.append((name, phase_walls(doc)))
    totals = transport_totals(doc)
    if totals:
        transport_runs.append((name, totals))

print("phase wall seconds, celegans 2x2 probe (serial default config):")
header = ["phase"] + [name for name, _ in runs]
print("  " + "".join(f"{h:>16}" for h in header))
for phase in PHASES:
    cells = [f"{phase:>16}"]
    prev = None
    for _, walls in runs:
        w = walls.get(phase)
        if w is None:
            cells.append(f"{'-':>16}")
        else:
            mark = ""
            if prev is not None and prev > 0:
                mark = f" ({(w - prev) / prev * 100.0:+.0f}%)"
            cells.append(f"{w:>9.4f}{mark:>7}")
            prev = w
    print("  " + "".join(cells))

for name, totals in transport_runs:
    print(f"\nper-transport pipeline seconds, {name} probe:")
    print(f"  {'config':>16}{'pipeline_s':>12}{'vs inprocess':>14}")
    for key in sorted(totals):
        base = totals.get("inprocess_" + key.split("_", 1)[1])
        mark = ""
        if base and not key.startswith("inprocess"):
            mark = f"{(totals[key] - base) / base * 100.0:+.0f}%"
        print(f"  {key:>16}{totals[key]:>12.4f}{mark:>14}")
EOF
