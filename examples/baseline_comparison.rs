//! ELBA vs the shared-memory baselines (the paper's Table 3/4 scenario,
//! in miniature): same dataset through the distributed pipeline and the
//! two serial comparator assemblers, comparing wall time and quality.
//!
//! ```sh
//! cargo run --release --example baseline_comparison
//! ```

use std::time::Instant;

use elba::prelude::*;

fn quality_row(name: &str, secs: f64, genome: &Seq, contigs: &[Seq]) {
    let report = evaluate(genome, contigs, &QualityConfig::default());
    println!(
        "{:<18} {:>8.2}s {:>12.2}% {:>12} {:>9} {:>14}",
        name,
        secs,
        report.completeness,
        report.longest_contig,
        report.n_contigs,
        report.misassembled_contigs
    );
}

fn main() {
    let spec = DatasetSpec::celegans_like(0.3, 13); // 30 kb genome
    let (genome, sim_reads) = spec.generate();
    let reads: Vec<Seq> = sim_reads.into_iter().map(|r| r.seq).collect();
    println!(
        "{}: genome {} bp, {} reads\n",
        spec.name,
        genome.len(),
        reads.len()
    );
    println!(
        "{:<18} {:>9} {:>13} {:>12} {:>9} {:>14}",
        "assembler", "time", "completeness", "longest", "contigs", "misassemblies"
    );

    // ELBA on 4 in-process ranks.
    let cfg = PipelineConfig::for_dataset(&spec);
    let reads_clone = reads.clone();
    let started = Instant::now();
    let contigs = Runner::new(Backend::InProcess)
        .ranks(4)
        .run(move |comm| {
            let grid = ProcGrid::new(comm);
            let (contigs, _) = assemble_gathered(&grid, &reads_clone, &cfg);
            contigs
        })
        .remove(0);
    let elba_secs = started.elapsed().as_secs_f64();
    let elba_seqs: Vec<Seq> = contigs.iter().map(|c| c.seq.clone()).collect();
    quality_row("ELBA (P=4)", elba_secs, &genome, &elba_seqs);

    // Baselines share the pipeline's k / x-drop parameters.
    let bcfg = BaselineConfig {
        k: spec.k,
        xdrop: spec.xdrop,
        min_overlap: (spec.reads.mean_len as f64 * 0.05) as usize,
        fuzz: (spec.reads.mean_len as f64 * 0.05) as usize,
        ..BaselineConfig::default()
    };

    let started = Instant::now();
    let (bog, _) = assemble_bog(&reads, &bcfg);
    let bog_secs = started.elapsed().as_secs_f64();
    let bog_seqs: Vec<Seq> = bog.iter().map(|c| c.seq.clone()).collect();
    quality_row("BOG (HiCanu-like)", bog_secs, &genome, &bog_seqs);

    let started = Instant::now();
    let (mini, _) = assemble_minimizer(&reads, &bcfg);
    let mini_secs = started.elapsed().as_secs_f64();
    let mini_seqs: Vec<Seq> = mini.iter().map(|c| c.seq.clone()).collect();
    quality_row("minimizer (miniasm-like)", mini_secs, &genome, &mini_seqs);

    println!(
        "\nELBA speedup: {:.1}× over BOG, {:.1}× over minimizer \
         (paper Table 3 reports 11–159× over HiCanu and 3–36× over Hifiasm\n\
         at 18–128 nodes; shapes match — the thorough BOG baseline is the slower one)",
        bog_secs / elba_secs,
        mini_secs / elba_secs
    );
}
