//! Anatomy of the contig-generation stage (Algorithm 2): runs the
//! pipeline up to the string matrix `S`, then walks through branch
//! removal, connected components, LPT partitioning, the induced-subgraph
//! exchange and local assembly step by step, printing what each does —
//! a guided tour of the paper's §4.2–4.4.
//!
//! ```sh
//! cargo run --release --example contig_stage_anatomy
//! ```

use elba::core::{connected_components, contig_generation, partition};
use elba::prelude::*;

fn main() {
    let spec = DatasetSpec::osativa_like(0.25, 5); // ~37 kb, more repeats
    let (_genome, sim_reads) = spec.generate();
    let reads: Vec<Seq> = sim_reads.into_iter().map(|r| r.seq).collect();
    let cfg = PipelineConfig::for_dataset(&spec);
    println!("{}: {} reads", spec.name, reads.len());

    let nranks = 4;
    let reads_clone = reads.clone();
    let rows = Runner::new(Backend::InProcess)
        .ranks(nranks)
        .run(move |comm| {
            let grid = ProcGrid::new(comm);
            let store = elba::seq::ReadStore::from_replicated(&grid, &reads_clone);

            // Run Algorithm 1 up to S by reusing the pipeline pieces.
            let table = elba::seq::count_kmers(&grid, &store, &cfg.kmer);
            let triples = elba::seq::build_a_triples(&grid, &store, &table, &cfg.kmer);
            let a = elba::sparse::DistMat::from_triples(
                &grid,
                reads_clone.len(),
                table.n_global as usize,
                triples,
                |acc: &mut elba::seq::AEntry, v| {
                    if v.pos < acc.pos {
                        *acc = v;
                    }
                },
            );
            let c = elba::graph::candidate_matrix(&grid, &a, &cfg.overlap);
            let (edge_triples, contained, _) =
                elba::graph::align_and_classify(&grid, &c, &store, &cfg.overlap);
            let r = elba::graph::overlap_graph(&grid, reads_clone.len(), edge_triples, &contained);
            let (s, red) = elba::graph::transitive_reduction_with(
                &grid,
                r,
                cfg.tr_fuzz,
                cfg.tr_max_iters,
                &cfg.overlap.spgemm,
            );
            let s = elba::graph::symmetrize(&grid, s);

            // --- §4.2: branch removal ------------------------------------
            let degrees = s.row_degrees(&grid);
            let branch_mask = degrees.map(&grid, |_, &d| d >= 3);
            let n_branches = grid.world().allreduce(
                branch_mask.local().iter().filter(|&&b| b).count() as u64,
                |x, y| x + y,
            );
            let l = s.clone().mask_rows_cols(&grid, &branch_mask);

            // --- §4.2: connected components -------------------------------
            let cc = connected_components(&grid, &l);

            // --- §4.3: contig sizes + LPT ----------------------------------
            let ldeg = l.row_degrees(&grid);
            let mut sizes: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
            for (&label, &d) in cc.labels.local().iter().zip(ldeg.local()) {
                if d >= 1 {
                    *sizes.entry(label).or_insert(0) += 1;
                }
            }
            let pairs: Vec<(u64, u64)> = sizes.into_iter().collect();
            let gathered = grid.world().gather(0, pairs);
            let lpt_info = gathered.map(|all| {
                let mut merged: std::collections::HashMap<u64, u64> = Default::default();
                for (label, count) in all.into_iter().flatten() {
                    *merged.entry(label).or_insert(0) += count;
                }
                let size_vec: Vec<u64> = merged.values().copied().collect();
                let lpt = partition(&size_vec, grid.world().size(), PartitionStrategy::Lpt);
                let rr = partition(
                    &size_vec,
                    grid.world().size(),
                    PartitionStrategy::RoundRobin,
                );
                (
                    size_vec.len(),
                    lpt.makespan(),
                    lpt.imbalance(),
                    rr.makespan(),
                )
            });

            // --- full Algorithm 2 ------------------------------------------
            let (local_contigs, stats) = contig_generation(&grid, &s, &store, &cfg.contig);
            let all = gather_contigs(&grid, &local_contigs);
            (
                grid.world().rank(),
                s.nnz_global(&grid),
                red.iterations,
                n_branches,
                cc.rounds,
                lpt_info,
                stats,
                all.len(),
                local_contigs.len(),
            )
        });

    let (_, s_nnz, tr_iters, n_branches, cc_rounds, lpt_info, stats, n_contigs, _) = &rows[0];
    println!(
        "\nstring matrix S        : {} nonzeros ({} TR sweeps)",
        s_nnz, tr_iters
    );
    println!("branch vertices masked : {} (degree ≥ 3, §4.2)", n_branches);
    println!(
        "connected components   : {} rounds of hook-and-shortcut",
        cc_rounds
    );
    if let Some((n, lpt_makespan, imbalance, rr_makespan)) = lpt_info {
        println!(
            "LPT partitioning       : {n} contigs, makespan {lpt_makespan} reads \
             (imbalance {imbalance:.3}; round-robin would give {rr_makespan})"
        );
    }
    println!(
        "induced subgraph       : components {} | largest {} reads | makespan {}",
        stats.n_components, stats.largest_component, stats.makespan
    );
    println!(
        "local assembly         : {} contigs total across ranks",
        n_contigs
    );
    println!("\nper-rank contig counts (LPT balance in action):");
    for (rank, .., local_count) in &rows {
        println!("  rank {rank}: {local_count} contigs assembled locally");
    }
}
