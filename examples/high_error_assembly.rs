//! High-error assembly scenario: an *H. sapiens*-like dataset (depth 10,
//! **15 % error**, the paper's Table 2 row 3 at reduced genome size),
//! run with the paper's high-error parameters k = 17, x-drop = 7.
//!
//! At 15 % error only ~6 % of 17-mers are error-free, so reliable-k-mer
//! selection and x-drop early termination do real work here — this is
//! the scenario that motivates storing `post(e)` explicitly (§4.4).
//!
//! ```sh
//! cargo run --release --example high_error_assembly
//! ```

use elba::prelude::*;

fn main() {
    let spec = DatasetSpec::hsapiens_like(0.15, 99); // 30 kb genome
    let (genome, sim_reads) = spec.generate();
    let reads: Vec<Seq> = sim_reads.into_iter().map(|r| r.seq).collect();
    println!(
        "{}: genome {} bp, {} reads, error {:.0}%, k={}, x-drop={}",
        spec.name,
        genome.len(),
        reads.len(),
        spec.reads.error_rate * 100.0,
        spec.k,
        spec.xdrop
    );

    let cfg = PipelineConfig::for_dataset(&spec);
    let reads_clone = reads.clone();
    let (mut outputs, profile) =
        Runner::new(Backend::InProcess)
            .ranks(4)
            .run_profiled(move |comm| {
                let grid = ProcGrid::new(comm);
                assemble_gathered(&grid, &reads_clone, &cfg)
            });
    let (contigs, result) = outputs.remove(0);

    println!("\nphase breakdown (the Alignment share dominates at high error):");
    print!("{}", profile.render_table());

    println!("\nalignment statistics:");
    println!("  candidate pairs : {}", result.align_stats.candidate_pairs);
    println!("  dovetails       : {}", result.align_stats.dovetails);
    println!("  contained reads : {}", result.align_stats.contained);
    println!("  internal matches: {}", result.align_stats.internal);

    let seqs: Vec<Seq> = contigs.iter().map(|c| c.seq.clone()).collect();
    let report = evaluate(
        &genome,
        &seqs,
        &QualityConfig {
            // noisy contigs need wider chaining tolerance
            diagonal_tolerance: 400,
            min_block_anchors: 2,
            ..QualityConfig::default()
        },
    );
    println!("\nquality vs reference:");
    println!("  completeness : {:.2}%", report.completeness);
    println!("  longest      : {} bp", report.longest_contig);
    println!("  contigs      : {}", report.n_contigs);
    println!("  unaligned    : {}", report.unaligned_contigs);
    println!(
        "\nnote: like ELBA (no polishing/consensus stage), contigs retain the raw\n\
         read error rate — the paper reports the same effect in Table 4."
    );
}
