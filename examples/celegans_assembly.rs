//! Low-error assembly scenario: a *C. elegans*-like dataset (depth 40,
//! 0.5 % error, k = 31, x = 15 — the paper's Table 2 row 2 at reduced
//! genome size), assembled at two rank counts to show result invariance,
//! with the contig set written to FASTA.
//!
//! ```sh
//! cargo run --release --example celegans_assembly
//! ```

use std::fs::File;
use std::io::BufWriter;

use elba::prelude::*;
use elba::seq::fasta::{write_fasta, FastaRecord};

fn canonical_strings(contigs: &[Contig]) -> Vec<String> {
    let mut out: Vec<String> = contigs
        .iter()
        .map(|c| {
            let f = c.seq.to_string();
            let r = c.seq.reverse_complement().to_string();
            if f <= r {
                f
            } else {
                r
            }
        })
        .collect();
    out.sort();
    out
}

fn main() {
    let spec = DatasetSpec::celegans_like(0.4, 7); // 40 kb genome
    let (genome, sim_reads) = spec.generate();
    let reads: Vec<Seq> = sim_reads.into_iter().map(|r| r.seq).collect();
    println!(
        "{}: genome {} bp, {} reads, mean length {}",
        spec.name,
        genome.len(),
        reads.len(),
        reads.iter().map(Seq::len).sum::<usize>() / reads.len()
    );

    let cfg = PipelineConfig::for_dataset(&spec);
    let mut per_p = Vec::new();
    for nranks in [1usize, 4] {
        let reads_clone = reads.clone();
        let cfg_clone = cfg.clone();
        let started = std::time::Instant::now();
        let contigs = Runner::new(Backend::InProcess)
            .ranks(nranks)
            .run(move |comm| {
                let grid = ProcGrid::new(comm);
                let (contigs, _) = assemble_gathered(&grid, &reads_clone, &cfg_clone);
                contigs
            })
            .remove(0);
        println!(
            "P = {nranks}: {} contigs in {:.2}s",
            contigs.len(),
            started.elapsed().as_secs_f64()
        );
        per_p.push(contigs);
    }

    // The contig set must not depend on the processor count.
    assert_eq!(
        canonical_strings(&per_p[0]),
        canonical_strings(&per_p[1]),
        "contig sets differ between P=1 and P=4"
    );
    println!("contig sets identical across rank counts ✓");

    let contigs = per_p.pop().expect("one run kept");
    let seqs: Vec<Seq> = contigs.iter().map(|c| c.seq.clone()).collect();
    let report = evaluate(&genome, &seqs, &QualityConfig::default());
    println!(
        "quality: completeness {:.2}% | longest {} | contigs {} | misassemblies {}",
        report.completeness, report.longest_contig, report.n_contigs, report.misassembled_contigs
    );

    let records: Vec<FastaRecord> = contigs
        .iter()
        .enumerate()
        .map(|(i, c)| FastaRecord {
            id: format!("contig_{i}_reads_{}", c.read_ids.len()),
            seq: c.seq.clone(),
        })
        .collect();
    let path = std::env::temp_dir().join("elba_celegans_contigs.fasta");
    let file = File::create(&path).expect("create FASTA");
    write_fasta(BufWriter::new(file), &records).expect("write FASTA");
    println!("contig set written to {}", path.display());
}
