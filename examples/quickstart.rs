//! Quickstart: simulate a tiny long-read dataset, assemble it with the
//! distributed pipeline on four in-process ranks, and evaluate the
//! contig set against the known reference.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use elba::prelude::*;

fn main() {
    // A ~20 kb genome sequenced at C. elegans-like settings (Table 2 row
    // 2, scaled): depth 40, 0.5 % error, k = 31, x-drop 15.
    let spec = DatasetSpec::celegans_like(0.2, 2022);
    let (genome, sim_reads) = spec.generate();
    let reads: Vec<Seq> = sim_reads.into_iter().map(|r| r.seq).collect();
    println!(
        "dataset: {} | genome {} bp | {} reads | depth {} | error {:.1}%",
        spec.name,
        genome.len(),
        reads.len(),
        spec.reads.depth,
        spec.reads.error_rate * 100.0
    );

    let cfg = PipelineConfig::for_dataset(&spec);
    let nranks = 4;
    let reads_for_ranks = reads.clone();
    let (mut outputs, profile) =
        Runner::new(Backend::InProcess)
            .ranks(nranks)
            .run_profiled(move |comm| {
                let grid = ProcGrid::new(comm);
                assemble_gathered(&grid, &reads_for_ranks, &cfg)
            });
    let (contigs, result) = outputs.remove(0);

    println!("\npipeline phases (max wall over {nranks} ranks):");
    print!("{}", profile.render_table());

    println!("\nassembly:");
    println!("  reliable k-mers   : {}", result.n_reliable_kmers);
    println!("  candidate pairs   : {}", result.candidate_nnz);
    println!("  string-graph nnz  : {}", result.string_graph_nnz);
    println!("  contigs           : {}", contigs.len());
    if let Some(longest) = contigs.first() {
        println!(
            "  longest contig    : {} bp ({} reads)",
            longest.seq.len(),
            longest.read_ids.len()
        );
    }

    let seqs: Vec<Seq> = contigs.iter().map(|c| c.seq.clone()).collect();
    let report = evaluate(&genome, &seqs, &QualityConfig::default());
    println!("\nquality vs reference (QUAST-style):");
    println!("  completeness      : {:.2}%", report.completeness);
    println!("  longest contig    : {} bp", report.longest_contig);
    println!("  contigs           : {}", report.n_contigs);
    println!("  misassemblies     : {}", report.misassembled_contigs);
    println!("  NG50              : {} bp", report.ng50);
}
